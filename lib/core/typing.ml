(* A lightweight static type system — the paper leaves static typing
   as an open issue ("The proposal leaves many issues open for further
   investigation, such as static typing..."); this module implements
   the conservative fragment that is useful without schema import:

   - sequence-type *inference* over the core language (item-kind
     lattice x occurrence lattice), always sound: the inferred type
     over-approximates every possible runtime value;
   - *warnings* for expressions whose inferred type proves a dynamic
     error or a dead spot (arithmetic on a guaranteed string, a path
     step over guaranteed atomics, an argument that cannot match its
     parameter type, EBV of a guaranteed multi-atomic sequence).

   Warnings never block execution (the language stays dynamically
   typed); the engine surfaces them on [compile]. *)

module C = Core_ast
module A = Xqb_syntax.Ast

(* -- the type lattice ------------------------------------------------ *)

type atomic_kind =
  | K_integer
  | K_decimal
  | K_double
  | K_numeric  (* any of the above *)
  | K_string
  | K_boolean
  | K_untyped
  | K_qname
  | K_any_atomic

type item_ty =
  | T_atomic of atomic_kind
  | T_element
  | T_attribute
  | T_text
  | T_comment
  | T_pi
  | T_document
  | T_node  (* any node kind *)
  | T_item  (* anything *)

(* Occurrence: how many items the value may contain. *)
type occ = O_zero | O_one | O_opt | O_star | O_plus

type t = { item : item_ty; occ : occ }

let empty_ty = { item = T_item; occ = O_zero }
let item_star = { item = T_item; occ = O_star }

let atomic_kind_to_string = function
  | K_integer -> "xs:integer"
  | K_decimal -> "xs:decimal"
  | K_double -> "xs:double"
  | K_numeric -> "xs:numeric"
  | K_string -> "xs:string"
  | K_boolean -> "xs:boolean"
  | K_untyped -> "xs:untypedAtomic"
  | K_qname -> "xs:QName"
  | K_any_atomic -> "xs:anyAtomicType"

let item_ty_to_string = function
  | T_atomic k -> atomic_kind_to_string k
  | T_element -> "element()"
  | T_attribute -> "attribute()"
  | T_text -> "text()"
  | T_comment -> "comment()"
  | T_pi -> "processing-instruction()"
  | T_document -> "document-node()"
  | T_node -> "node()"
  | T_item -> "item()"

let occ_to_string = function
  | O_zero -> " (empty)"
  | O_one -> ""
  | O_opt -> "?"
  | O_star -> "*"
  | O_plus -> "+"

let to_string ty =
  if ty.occ = O_zero then "empty-sequence()"
  else item_ty_to_string ty.item ^ occ_to_string ty.occ

(* joins *)

let join_kind a b =
  if a = b then a
  else
    match a, b with
    | (K_integer | K_decimal | K_double | K_numeric), (K_integer | K_decimal | K_double | K_numeric)
      ->
      K_numeric
    | _ -> K_any_atomic

let join_item a b =
  if a = b then a
  else
    match a, b with
    | T_atomic x, T_atomic y -> T_atomic (join_kind x y)
    | ( (T_element | T_attribute | T_text | T_comment | T_pi | T_document | T_node),
        (T_element | T_attribute | T_text | T_comment | T_pi | T_document | T_node) )
      ->
      T_node
    | _ -> T_item

let join_occ a b =
  match a, b with
  | O_zero, x | x, O_zero -> ( match x with O_one | O_plus -> O_opt | O_zero -> O_zero | o -> if o = O_plus then O_star else if o = O_one then O_opt else o)
  | O_one, O_one -> O_one
  | O_plus, (O_one | O_plus) | O_one, O_plus -> O_plus
  | O_opt, (O_one | O_opt) | O_one, O_opt -> O_opt
  | _ -> O_star

let join a b =
  if a.occ = O_zero then { b with occ = join_occ a.occ b.occ }
  else if b.occ = O_zero then { a with occ = join_occ a.occ b.occ }
  else { item = join_item a.item b.item; occ = join_occ a.occ b.occ }

(* sequence concatenation: occurrences add *)
let occ_concat a b =
  match a, b with
  | O_zero, x | x, O_zero -> x
  | (O_one | O_plus), (O_one | O_plus) -> O_plus
  | (O_one | O_plus), (O_opt | O_star) | (O_opt | O_star), (O_one | O_plus) ->
    O_plus
  | (O_opt | O_star), (O_opt | O_star) -> O_star

let concat a b =
  if a.occ = O_zero then b
  else if b.occ = O_zero then a
  else { item = join_item a.item b.item; occ = occ_concat a.occ b.occ }

(* iteration (for-loop): body occurrence multiplied by input count *)
let occ_iterate input body =
  match input, body with
  | O_zero, _ | _, O_zero -> O_zero
  | O_one, b -> b
  | O_plus, O_one -> O_plus
  | O_plus, O_plus -> O_plus
  | _ -> O_star

(* can the value be plural? / must it be non-empty? *)
let may_be_plural o = match o with O_plus | O_star -> true | O_zero | O_one | O_opt -> false
let must_be_nonempty o = match o with O_one | O_plus -> true | O_zero | O_opt | O_star -> false

(* definitely an atomic (never a node)? *)
let definitely_atomic = function T_atomic _ -> true | _ -> false

(* atomization type *)
let atomized ty =
  match ty.item with
  | T_atomic _ -> ty
  | T_item -> { ty with item = T_atomic K_any_atomic }
  | _ -> { ty with item = T_atomic K_untyped }

(* can atomized values of this kind be used in arithmetic? *)
let arith_ok = function
  | K_integer | K_decimal | K_double | K_numeric | K_untyped | K_any_atomic -> true
  | K_string | K_boolean | K_qname -> false

(* -- declared sequence types -> inferred types ----------------------- *)

let of_seq_type (st : A.seq_type) : t =
  match st with
  | A.St_empty -> empty_ty
  | A.St (it, occ) ->
    let item =
      match it with
      | A.It_atomic q -> (
        match Xqb_xml.Qname.to_string q with
        | "xs:integer" -> T_atomic K_integer
        | "xs:decimal" -> T_atomic K_decimal
        | "xs:double" | "xs:float" -> T_atomic K_double
        | "xs:string" -> T_atomic K_string
        | "xs:boolean" -> T_atomic K_boolean
        | "xs:untypedAtomic" -> T_atomic K_untyped
        | "xs:QName" -> T_atomic K_qname
        | _ -> T_atomic K_any_atomic)
      | A.It_item -> T_item
      | A.It_node -> T_node
      | A.It_element _ -> T_element
      | A.It_attribute _ -> T_attribute
      | A.It_text -> T_text
      | A.It_comment -> T_comment
      | A.It_pi -> T_pi
      | A.It_document -> T_document
    in
    let occ =
      match occ with
      | A.Occ_one -> O_one
      | A.Occ_opt -> O_opt
      | A.Occ_star -> O_star
      | A.Occ_plus -> O_plus
    in
    { item; occ }

(* do an inferred type and a declared type certainly NOT overlap? *)
let disjoint_with_declared (inferred : t) (declared : t) =
  let items_disjoint =
    match inferred.item, declared.item with
    | T_item, _ | _, T_item -> false
    | T_atomic a, T_atomic b -> (
      match a, b with
      | x, y when x = y -> false
      | (K_any_atomic | K_untyped), _ | _, (K_any_atomic | K_untyped) ->
        (* untyped casts to anything at function boundaries? we only
           match structurally, so untyped vs string IS disjoint for
           instance-of-style matching; stay conservative: overlap *)
        false
      | (K_integer | K_decimal | K_double | K_numeric),
        (K_integer | K_decimal | K_double | K_numeric) ->
        (* promotion makes the whole numeric tower overlap *)
        false
      | _ -> true)
    | T_atomic _, _ | _, T_atomic _ -> true
    | T_node, _ | _, T_node -> false
    | a, b -> a <> b
  in
  let occ_disjoint =
    match inferred.occ, declared.occ with
    | O_zero, (O_one | O_plus) -> true
    | (O_one | O_plus), O_zero -> true
    | _ -> false
  in
  occ_disjoint || (items_disjoint && must_be_nonempty inferred.occ
                   && declared.occ <> O_zero)

(* -- inference -------------------------------------------------------- *)

module SMap = Map.Make (String)

type env = {
  vars : t SMap.t;
  (* declared return types of user functions *)
  fn_ret : (string * int, t) Hashtbl.t;
  mutable warnings : string list;
}

let warn env fmt = Format.kasprintf (fun s -> env.warnings <- s :: env.warnings) fmt

let scalar_ty (a : Xqb_xdm.Atomic.t) =
  let k =
    match a with
    | Xqb_xdm.Atomic.Integer _ -> K_integer
    | Xqb_xdm.Atomic.Decimal _ -> K_decimal
    | Xqb_xdm.Atomic.Double _ -> K_double
    | Xqb_xdm.Atomic.String _ -> K_string
    | Xqb_xdm.Atomic.Boolean _ -> K_boolean
    | Xqb_xdm.Atomic.Untyped _ -> K_untyped
    | Xqb_xdm.Atomic.QName _ -> K_qname
  in
  { item = T_atomic k; occ = O_one }

(* result types of the builtins we can say something about *)
let builtin_ty name (_args : t list) : t =
  let one item = { item; occ = O_one } in
  match name with
  | "count" | "position" | "last" | "string-length" | "string-to-codepoints" ->
    one (T_atomic K_integer)
  | "true" | "false" | "not" | "boolean" | "empty" | "exists" | "contains"
  | "starts-with" | "ends-with" | "deep-equal" | "matches" | "doc-available" ->
    one (T_atomic K_boolean)
  | "string" | "concat" | "string-join" | "substring" | "substring-before"
  | "substring-after" | "upper-case" | "lower-case" | "translate"
  | "normalize-space" | "name" | "local-name" | "codepoints-to-string"
  | "replace" | "%avt-part" ->
    one (T_atomic K_string)
  | "number" -> one (T_atomic K_double)
  | "sum" -> one (T_atomic K_numeric)
  | "avg" | "abs" | "floor" | "ceiling" | "round" | "round-half-to-even" ->
    { item = T_atomic K_numeric; occ = O_opt }
  | "doc" | "root" -> one T_node
  | "%ddo" | "%ddo-elided" -> { item = T_node; occ = O_star }
  | "data" | "distinct-values" -> { item = T_atomic K_any_atomic; occ = O_star }
  | "node-name" -> { item = T_atomic K_qname; occ = O_opt }
  | "tokenize" -> { item = T_atomic K_string; occ = O_star }
  | "id" -> { item = T_element; occ = O_star }
  | "xs:integer" -> one (T_atomic K_integer)
  | "xs:decimal" -> one (T_atomic K_decimal)
  | "xs:double" -> one (T_atomic K_double)
  | "xs:string" -> one (T_atomic K_string)
  | "xs:boolean" -> one (T_atomic K_boolean)
  | "xs:QName" -> one (T_atomic K_qname)
  | "xs:untypedAtomic" -> one (T_atomic K_untyped)
  | _ -> item_star

let rec infer env (vars : t SMap.t) (e : C.expr) : t =
  match e with
  | C.Scalar a -> scalar_ty a
  | C.Var v -> ( match SMap.find_opt v vars with Some t -> t | None -> item_star)
  | C.Context_item -> { item = T_item; occ = O_one }
  | C.Empty -> empty_ty
  | C.Seq (a, b) -> concat (infer env vars a) (infer env vars b)
  | C.For (v, pos, e1, body) ->
    let t1 = infer env vars e1 in
    let vars' = SMap.add v { t1 with occ = O_one } vars in
    let vars' =
      match pos with
      | Some p -> SMap.add p { item = T_atomic K_integer; occ = O_one } vars'
      | None -> vars'
    in
    let tb = infer env vars' body in
    if t1.occ = O_zero then empty_ty
    else { item = tb.item; occ = occ_iterate t1.occ tb.occ }
  | C.Let (v, e1, body) ->
    let t1 = infer env vars e1 in
    infer env (SMap.add v t1 vars) body
  | C.If (c, t, f) ->
    check_ebv env vars c "if condition";
    join (infer env vars t) (infer env vars f)
  | C.Sort_flwor (clauses, specs, ret) ->
    let vars', multiplier =
      List.fold_left
        (fun (vars, mult) cl ->
          match cl with
          | C.S_for (v, pos, e) ->
            let t1 = infer env vars e in
            let vars = SMap.add v { t1 with occ = O_one } vars in
            let vars =
              match pos with
              | Some p -> SMap.add p { item = T_atomic K_integer; occ = O_one } vars
              | None -> vars
            in
            (vars, occ_iterate mult t1.occ)
          | C.S_let (v, e) ->
            let t1 = infer env vars e in
            (SMap.add v t1 vars, mult)
          | C.S_where e ->
            check_ebv env vars e "where clause";
            (vars, join_occ mult O_zero))
        (vars, O_one) clauses
    in
    List.iter (fun (k, _) -> ignore (infer env vars' k)) specs;
    let tr = infer env vars' ret in
    { item = tr.item; occ = occ_iterate multiplier tr.occ }
  | C.Some_sat (v, e1, body) | C.Every_sat (v, e1, body) ->
    let t1 = infer env vars e1 in
    check_ebv env (SMap.add v { t1 with occ = O_one } vars) body "satisfies clause";
    { item = T_atomic K_boolean; occ = O_one }
  | C.Step (input, axis, test) ->
    let ti = infer env vars input in
    if definitely_atomic ti.item && ti.occ <> O_zero then
      warn env "path step over a value of type %s (a node is required)"
        (to_string ti);
    let item =
      match test, axis with
      | Xqb_store.Axes.Kind_text, _ -> T_text
      | Xqb_store.Axes.Kind_comment, _ -> T_comment
      | Xqb_store.Axes.Kind_document, _ -> T_document
      | Xqb_store.Axes.Kind_attribute _, _ -> T_attribute
      | Xqb_store.Axes.Kind_element _, _ -> T_element
      | (Xqb_store.Axes.Name _ | Xqb_store.Axes.Wildcard), Xqb_store.Axes.Attribute
        ->
        T_attribute
      | (Xqb_store.Axes.Name _ | Xqb_store.Axes.Wildcard), _ -> T_element
      | _ -> T_node
    in
    { item; occ = O_star }
  | C.Map (a, b) ->
    let ta = infer env vars a in
    let tb = infer env vars b in
    { item = tb.item; occ = occ_iterate ta.occ tb.occ }
  | C.Key_step (base, _, _, rhs) ->
    ignore (infer env vars base);
    ignore (infer env vars rhs);
    { item = T_element; occ = O_star }
  | C.Predicate (input, pred) ->
    let ti = infer env vars input in
    ignore (infer env vars pred);
    { ti with occ = (match ti.occ with O_zero -> O_zero | _ -> O_star) }
  | C.Binop (op, a, b) -> infer_binop env vars op a b
  | C.Unary_minus a ->
    let ta = atomized (infer env vars a) in
    (match ta.item with
    | T_atomic k when not (arith_ok k) ->
      warn env "unary minus on %s" (to_string ta)
    | _ -> ());
    { item = T_atomic K_numeric; occ = (match ta.occ with O_zero -> O_zero | O_one | O_plus -> O_one | _ -> O_opt) }
  | C.Call_builtin (name, args) ->
    let targs = List.map (infer env vars) args in
    builtin_ty name targs
  | C.Call_user (f, args) -> (
    let targs = List.map (infer env vars) args in
    ignore targs;
    match Hashtbl.find_opt env.fn_ret (Xqb_xml.Qname.to_string f, List.length args) with
    | Some t -> t
    | None -> item_star)
  | C.Instance_of (a, _) | C.Castable_as (a, _) ->
    ignore (infer env vars a);
    { item = T_atomic K_boolean; occ = O_one }
  | C.Cast_as (a, it) ->
    ignore (infer env vars a);
    of_seq_type (A.St (it, A.Occ_one))
  | C.Treat_as (a, st) ->
    ignore (infer env vars a);
    of_seq_type st
  | C.Elem (ns, content) ->
    infer_name env vars ns;
    ignore (infer env vars content);
    { item = T_element; occ = O_one }
  | C.Attr (ns, content) ->
    infer_name env vars ns;
    ignore (infer env vars content);
    { item = T_attribute; occ = O_one }
  | C.Text_node a ->
    let t = infer env vars a in
    { item = T_text; occ = (match t.occ with O_zero -> O_zero | O_one | O_plus -> O_one | _ -> O_opt) }
  | C.Comment_node a ->
    ignore (infer env vars a);
    { item = T_comment; occ = O_one }
  | C.Pi_node (ns, a) ->
    infer_name env vars ns;
    ignore (infer env vars a);
    { item = T_pi; occ = O_one }
  | C.Doc_node a ->
    ignore (infer env vars a);
    { item = T_document; occ = O_one }
  | C.Copy a ->
    let t = infer env vars a in
    { t with item = t.item }
  | C.Insert (_, payload, target, _) ->
    ignore (infer env vars payload);
    let tt = infer env vars target in
    if definitely_atomic tt.item && tt.occ <> O_zero then
      warn env "insert target has type %s (a node is required)" (to_string tt);
    empty_ty
  | C.Delete (a, _) ->
    let t = infer env vars a in
    if definitely_atomic t.item && must_be_nonempty t.occ then
      warn env "delete of a value of type %s (nodes required)" (to_string t);
    empty_ty
  | C.Replace (a, b, _) | C.Replace_value (a, b, _) | C.Rename (a, b, _) ->
    let ta = infer env vars a in
    ignore (infer env vars b);
    if definitely_atomic ta.item && ta.occ <> O_zero then
      warn env "update target has type %s (a node is required)" (to_string ta);
    empty_ty
  | C.Snap (_, a) -> infer env vars a

and infer_name env vars = function
  | C.Static _ -> ()
  | C.Dynamic e -> ignore (infer env vars e)

and check_ebv env vars e what =
  let t = infer env vars e in
  if definitely_atomic t.item && may_be_plural t.occ && t.occ = O_plus then
    warn env
      "%s always has two or more atomic items: its effective boolean value is an error"
      what;
  ()

and infer_binop env vars (op : A.binop) a b =
  let ta = infer env vars a in
  let tb = infer env vars b in
  let bool_one = { item = T_atomic K_boolean; occ = O_one } in
  match op with
  | A.Or | A.And ->
    check_ebv env vars a "operand of and/or";
    check_ebv env vars b "operand of and/or";
    bool_one
  | A.Gen_eq | A.Gen_ne | A.Gen_lt | A.Gen_le | A.Gen_gt | A.Gen_ge -> bool_one
  | A.Val_eq | A.Val_ne | A.Val_lt | A.Val_le | A.Val_gt | A.Val_ge ->
    { item = T_atomic K_boolean;
      occ =
        (if must_be_nonempty ta.occ && must_be_nonempty tb.occ then O_one
         else O_opt);
    }
  | A.Is | A.Precedes | A.Follows -> { item = T_atomic K_boolean; occ = O_opt }
  | A.Add | A.Sub | A.Mul | A.Div | A.Idiv | A.Mod ->
    let check side t =
      let at = atomized t in
      match at.item with
      | T_atomic k when not (arith_ok k) && must_be_nonempty t.occ ->
        warn env "%s operand of %s has type %s" side (A.binop_to_string op)
          (to_string at)
      | _ -> ()
    in
    check "left" ta;
    check "right" tb;
    let occ =
      if must_be_nonempty ta.occ && must_be_nonempty tb.occ then O_one else O_opt
    in
    { item = T_atomic K_numeric; occ }
  | A.To -> { item = T_atomic K_integer; occ = O_star }
  | A.Union | A.Intersect | A.Except ->
    { item = join_item ta.item tb.item; occ = O_star }

(* -- whole programs --------------------------------------------------- *)

(* Infer a program; returns the warnings (empty = no definite
   problems found). Function parameter/return annotations seed the
   environment; unannotated positions default to item()*. *)
let check_prog (prog : Normalize.prog) : string list =
  let env = { vars = SMap.empty; fn_ret = Hashtbl.create 8; warnings = [] } in
  (* declared return types first (mutual recursion) *)
  List.iter
    (fun (f : Normalize.func) ->
      match f.Normalize.return_type with
      | Some st ->
        Hashtbl.replace env.fn_ret
          (Xqb_xml.Qname.to_string f.Normalize.fname, List.length f.Normalize.params)
          (of_seq_type st)
      | None -> ())
    prog.Normalize.functions;
  let globals =
    List.fold_left
      (fun vars (v, ty, e) ->
        let inferred = infer env vars e in
        let t =
          match ty with
          | Some st ->
            let declared = of_seq_type st in
            if disjoint_with_declared inferred declared then
              warn env "global $%s has type %s but is declared %s" v
                (to_string inferred) (to_string declared);
            declared
          | None -> inferred
        in
        SMap.add v t vars)
      SMap.empty prog.Normalize.global_vars
  in
  List.iter
    (fun (f : Normalize.func) ->
      let vars =
        List.fold_left
          (fun vars (p, ty) ->
            SMap.add p
              (match ty with Some st -> of_seq_type st | None -> item_star)
              vars)
          globals f.Normalize.params
      in
      let tb = infer env vars f.Normalize.body in
      match f.Normalize.return_type with
      | Some st when disjoint_with_declared tb (of_seq_type st) ->
        warn env "function %s returns %s but is declared %s"
          (Xqb_xml.Qname.to_string f.Normalize.fname)
          (to_string tb)
          (to_string (of_seq_type st))
      | _ -> ())
    prog.Normalize.functions;
  (match prog.Normalize.body with
  | Some body -> ignore (infer env globals body)
  | None -> ());
  List.rev env.warnings

(* Expression-level entry point for tests. *)
let infer_expr ?(vars = SMap.empty) (e : C.expr) : t * string list =
  let env = { vars = SMap.empty; fn_ret = Hashtbl.create 1; warnings = [] } in
  let t = infer env vars e in
  (t, List.rev env.warnings)
