(* Per-query span tracer.

   One [t] is created per job (or per CLI run), so recording touches
   only a per-trace mutex — there is no global lock anywhere on the
   hot path, and traces from concurrent jobs never contend. A
   disabled tracer ([disabled], or any reference kept as [None] by
   the instrumented layer) costs exactly one branch per
   instrumentation point, which is the "compiled out" feel the
   service needs to keep overhead at ~0 when tracing is off.

   Spans form a tree via [parent] links: [begin_span]/[with_span]
   maintain an explicit stack of open spans, so nesting is recorded
   even when Chrome's duration-based nesting inference would be
   ambiguous. Timestamps are monotonic ({!Clock}), relative to the
   trace's creation. *)

type span = {
  id : int;
  parent : int;  (* span id, -1 for roots *)
  name : string;
  cat : string;
  tid : int;  (* recording domain, for the Chrome timeline lanes *)
  start_ns : int;
  mutable dur_ns : int;  (* -1 while still open *)
  mutable args : (string * string) list;
}

type t = {
  enabled : bool;
  id : string;  (* process-unique label ("t17") for cross-referencing *)
  mutex : Mutex.t;
  cap : int;
  epoch_ns : int;
  mutable spans : span list;  (* newest first *)
  mutable n : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
}

(* Trace ids are process-unique so update provenance, the slow-effect
   log, and the TRACE wire command can all point at the same trace. *)
let trace_counter = Atomic.make 0

let create ?(cap = 4096) () =
  {
    enabled = true;
    id = Printf.sprintf "t%d" (Atomic.fetch_and_add trace_counter 1);
    mutex = Mutex.create ();
    cap;
    epoch_ns = Clock.now_ns ();
    spans = [];
    n = 0;
    dropped = 0;
    next_id = 0;
    stack = [];
  }

(* The shared do-nothing tracer: every operation returns after one
   [enabled] test. *)
let disabled =
  {
    enabled = false;
    id = "t-off";
    mutex = Mutex.create ();
    cap = 0;
    epoch_ns = 0;
    spans = [];
    n = 0;
    dropped = 0;
    next_id = 0;
    stack = [];
  }

let enabled t = t.enabled

let id t = t.id

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t s =
  if t.n < t.cap then begin
    t.spans <- s :: t.spans;
    t.n <- t.n + 1
  end
  else t.dropped <- t.dropped + 1

let begin_span ?(cat = "phase") t name =
  if not t.enabled then -1
  else begin
    let ts = Clock.now_ns () in
    locked t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let parent = match t.stack with [] -> -1 | p :: _ -> p in
        record t
          {
            id;
            parent;
            name;
            cat;
            tid = (Domain.self () :> int);
            start_ns = ts;
            dur_ns = -1;
            args = [];
          };
        t.stack <- id :: t.stack;
        id)
  end

let end_span ?(args = []) t id =
  if t.enabled && id >= 0 then begin
    let now = Clock.now_ns () in
    locked t (fun () ->
        t.stack <- List.filter (fun i -> i <> id) t.stack;
        match List.find_opt (fun (s : span) -> s.id = id) t.spans with
        | None -> ()  (* dropped at the cap *)
        | Some s ->
          s.dur_ns <- now - s.start_ns;
          if args <> [] then s.args <- s.args @ args)
  end

let with_span ?cat ?(args = []) t name f =
  if not t.enabled then f ()
  else begin
    let id = begin_span ?cat t name in
    Fun.protect ~finally:(fun () -> end_span ~args t id) f
  end

(* Record a span after the fact, with explicit timestamps — queue
   wait is only known at dequeue time, from a different thread than
   the one that submitted. *)
let add_span ?(cat = "phase") ?(parent = -1) ?(args = []) t ~name ~start_ns
    ~dur_ns () =
  if t.enabled then
    locked t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        record t
          {
            id;
            parent;
            name;
            cat;
            tid = (Domain.self () :> int);
            start_ns;
            dur_ns = max 0 dur_ns;
            args;
          })

let instant ?(cat = "mark") ?(args = []) t name =
  add_span ~cat ~args t ~name ~start_ns:(Clock.now_ns ()) ~dur_ns:0 ()

let span_count t = locked t (fun () -> t.n)
let dropped t = locked t (fun () -> t.dropped)

let spans t = locked t (fun () -> List.rev t.spans)

(* Total closed-span nanoseconds per span name, insertion-ordered by
   first occurrence — the service folds this into the per-phase
   latency histograms. *)
let phase_totals t =
  let sl = spans t in
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.dur_ns >= 0 then begin
        if not (Hashtbl.mem tbl s.name) then order := s.name :: !order;
        Hashtbl.replace tbl s.name
          (s.dur_ns + Option.value ~default:0 (Hashtbl.find_opt tbl s.name))
      end)
    sl;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

(* -- Chrome trace-event export -------------------------------------- *)

let to_chrome_json ?(pid = 1) t =
  let sl = spans t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      let ts_us = float_of_int (s.start_ns - t.epoch_ns) /. 1e3 in
      let dur_us = float_of_int (max 0 s.dur_ns) /. 1e3 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{"
           (Json.escape s.name) (Json.escape s.cat) ts_us dur_us pid s.tid);
      let args =
        [ ("span", string_of_int s.id); ("parent", string_of_int s.parent) ]
        @ s.args
      in
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)))
        args;
      Buffer.add_string buf "}}")
    sl;
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d}}"
       (dropped t));
  Buffer.contents buf
