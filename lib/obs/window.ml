(* Fixed-footprint sliding-window metrics.

   A window is a ring of [slots] slots, each covering [slot_ms] of
   monotonic time; a sample lands in the slot its timestamp maps to,
   recycling the slot in place when the ring laps it. Reading merges
   every slot still inside the window span into a scratch histogram
   (Hist.merge), so a snapshot is O(slots) with zero retained
   allocation: memory is constant no matter the request rate, which
   is the point — since-boot counters cannot answer "what is the
   error rate NOW", and unbounded reservoirs cannot run for months.

   The ring is sharded by recording domain (shard = domain id mod 8):
   a record locks only its own shard's mutex, so worker domains
   completing queries concurrently never serialize on a global lock —
   unsharded, eight domains contend a single mutex on every query and
   the futex round-trips cost more than the sample (measured ~4us of
   apparent latency per record under full contention, vs ~150ns
   sharded). A snapshot locks each shard in turn and merges all of
   them, which is fine at health-check frequency.

   Slots use bucket-only histograms (exact_cap = 0): window
   percentiles are always log-bucket estimates (~19% relative
   error), the right trade for an alerting signal.

   The current slot is included while still filling, so a snapshot
   slightly under-reports the true instantaneous rate (the span
   divides by the full window even though the newest slot is
   partial). Thread-safe; [now_ns] is injectable for deterministic
   tests and must be non-decreasing across calls. *)

type slot = {
  mutable epoch : int;  (* now_ns / slot_ns this slot holds; min_int = empty *)
  mutable errors : int;
  mutable slow : int;  (* samples over the latency SLO target *)
  hist : Hist.t;
}

type shard = {
  mutex : Mutex.t;
  slots : slot array;
}

let nshards = 8

type t = {
  slot_ns : int;
  nslots : int;
  shards : shard array;
}

let create ~slot_ms ~slots () =
  if slot_ms <= 0 || slots <= 0 then invalid_arg "Window.create";
  {
    slot_ns = slot_ms * 1_000_000;
    nslots = slots;
    shards =
      Array.init nshards (fun _ ->
          {
            mutex = Mutex.create ();
            slots =
              Array.init slots (fun _ ->
                  {
                    epoch = min_int;
                    errors = 0;
                    slow = 0;
                    hist = Hist.create ~exact_cap:0 ();
                  });
          });
  }

let span_s t = float_of_int (t.slot_ns * t.nslots) /. 1e9

let slot_for t sh now =
  let epoch = now / t.slot_ns in
  let s = sh.slots.(((epoch mod t.nslots) + t.nslots) mod t.nslots) in
  if s.epoch <> epoch then begin
    s.epoch <- epoch;
    s.errors <- 0;
    s.slow <- 0;
    Hist.reset s.hist
  end;
  s

let record ?now_ns t ~ok ~slow latency_ns =
  let now = match now_ns with Some n -> n | None -> Clock.now_ns () in
  let sh = t.shards.((Domain.self () :> int) land (nshards - 1)) in
  Mutex.lock sh.mutex;
  let s = slot_for t sh now in
  Hist.record s.hist (float_of_int latency_ns);
  if not ok then s.errors <- s.errors + 1;
  if slow then s.slow <- s.slow + 1;
  Mutex.unlock sh.mutex

type snap = {
  count : int;
  errors : int;
  slow : int;
  span_s : float;
  rate : float;  (* samples/s over the full window span *)
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
  err_frac : float;  (* errors/count; 0 when empty *)
  slow_frac : float;
}

let snapshot ?now_ns t =
  let now = match now_ns with Some n -> n | None -> Clock.now_ns () in
  let epoch = now / t.slot_ns in
  let min_epoch = epoch - t.nslots + 1 in
  let h = Hist.create ~exact_cap:0 () in
  let errors = ref 0 and slow = ref 0 in
  Array.iter
    (fun sh ->
      Mutex.lock sh.mutex;
      Array.iter
        (fun s ->
          if s.epoch >= min_epoch && s.epoch <= epoch then begin
            Hist.merge ~into:h s.hist;
            errors := !errors + s.errors;
            slow := !slow + s.slow
          end)
        sh.slots;
      Mutex.unlock sh.mutex)
    t.shards;
  let count = Hist.count h in
  let fc = float_of_int count in
  let span = span_s t in
  {
    count;
    errors = !errors;
    slow = !slow;
    span_s = span;
    rate = fc /. span;
    mean_ns = Hist.mean h;
    p50_ns = Hist.percentile h 0.50;
    p99_ns = Hist.percentile h 0.99;
    max_ns = Hist.max_value h;
    err_frac = (if count = 0 then 0. else float_of_int !errors /. fc);
    slow_frac = (if count = 0 then 0. else float_of_int !slow /. fc);
  }

(* SLO burn rate: how many times faster than sustainable the error
   budget is being consumed. [budget_frac] is the allowed failure
   fraction (e.g. 0.01 for a 99% target); burn 1.0 = exactly on
   target, >1 = burning ahead of budget. 0 on an empty window: no
   traffic is no evidence of burn. *)
let burn ~frac ~budget_frac =
  if budget_frac <= 0. then if frac > 0. then infinity else 0.
  else frac /. budget_frac

let snap_json s =
  Printf.sprintf
    "{\"count\":%d,\"errors\":%d,\"slow\":%d,\"span_s\":%g,\"rate\":%.3f,\"mean_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,\"err_frac\":%.6f,\"slow_frac\":%.6f}"
    s.count s.errors s.slow s.span_s s.rate (s.mean_ns /. 1e6) (s.p50_ns /. 1e6)
    (s.p99_ns /. 1e6) (s.max_ns /. 1e6) s.err_frac s.slow_frac
