(** GC/runtime telemetry off the OCaml 5 [Runtime_events] ring.

    A refcounted process-wide singleton (GC is per-process, so every
    embedder shares one consumer): {!start} spawns the polling
    thread on the first call, {!stop} joins it on the last. The
    consumer matches EV_MINOR / EV_MAJOR begin→end spans into
    per-domain pause histograms ({!Hist}) plus one shared sliding
    10s {!Window} whose p99 backs the HEALTH [gc-pause] reason, and
    accumulates allocation/promotion word counters and compaction
    counts.

    Pause attribution is polled (50 ms), so totals lag reality by at
    most one poll interval — per-job deltas under that horizon read
    as zero. *)

val start : unit -> unit
val stop : unit -> unit

(** True while the consumer is running (and the runtime supports
    events — a failed [Runtime_events.start] degrades to disabled). *)
val enabled : unit -> bool

(** Force a ring drain now (tests; the thread polls anyway). *)
val poll : unit -> unit

(** Cumulative ns spent in observed GC pauses (all domains). *)
val total_pause_ns : unit -> int

(** Minor collections + major slices observed. *)
val pauses_total : unit -> int

(** p99 pause over the sliding 10s window, in ns; includes any
    injected floor. *)
val pause_p99_10s_ns : unit -> float

(** Deterministic-health test hook: floor the reported 10s p99 at
    [ns] until {!clear_injected}. *)
val inject_pause : ns:int -> unit

val clear_injected : unit -> unit

(** The STATS ["gc"] document: totals, window p99/rate, per-domain
    minor/major histograms. *)
val stats_json : unit -> string

(** Contribute the [xqbang_gc_*] families to a shared page. *)
val to_prom : Prom.t -> unit
