(* Structured, bounded service event log.

   Counters say how much; events say what happened, in order. Every
   operationally interesting transition (boot, recovery, checkpoint,
   replica bootstrap, overload rejection, stall detection, health
   state change, ...) is logged as a typed record into a fixed-size
   ring, and — when a sink is attached — appended as one JSON line to
   an on-disk file. Info-and-above lines are serialized and flushed
   immediately so the tail survives a SIGKILL (page cache outlives
   the process; only true power loss can eat it); Debug records
   (wal.commit is one per committed write — the hot path) are only
   queued, and serialized in order by the owner's periodic [pump], at
   the next Info+ flush, or every 4096 pending as a backstop, so the
   per-commit cost is a ring slot write and a cons, not a printf. A
   kill can lose the queued tail, which only under-reports
   — the flight recorder's invariants allow that. The ring answers
   the EVENTS wire verb; the sink feeds the crash flight recorder.

   Records carry both clocks: ts_ns (monotonic) orders events within
   a run, wall_s anchors them to real time across runs.

   Subscribers run outside the ring mutex (they may log); sink
   writes run inside it (lines must not interleave). *)

type severity = Debug | Info | Warn | Error | Critical

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Critical -> "critical"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | "critical" -> Some Critical
  | _ -> None

let severity_rank = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Critical -> 4

type field = S of string | I of int | F of float | B of bool

type event = {
  seq : int;
  ts_ns : int;
  wall_s : float;
  level : severity;
  kind : string;
  data : (string * field) list;
}

type t = {
  enabled : bool;
  cap : int;
  mutex : Mutex.t;
  ring : event option array;  (* slot = seq mod cap *)
  mutable total : int;  (* events ever logged = next seq *)
  by_level : int array;  (* indexed by severity_rank *)
  mutable sink : out_channel option;
  mutable pending : event list;  (* Debug events queued for the sink, newest first *)
  mutable npending : int;
  mutable subs : (event -> unit) list;
}

let create ?(cap = 512) ?sink_path () =
  let sink =
    match sink_path with
    | None -> None
    | Some p -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 p)
  in
  {
    enabled = true;
    cap = max 1 cap;
    mutex = Mutex.create ();
    ring = Array.make (max 1 cap) None;
    total = 0;
    by_level = Array.make 5 0;
    sink;
    pending = [];
    npending = 0;
    subs = [];
  }

(* A no-op log for telemetry-off runs (bench E22's baseline): log
   becomes a single branch, no ring, no sink. *)
let disabled () =
  {
    enabled = false;
    cap = 1;
    mutex = Mutex.create ();
    ring = Array.make 1 None;
    total = 0;
    by_level = Array.make 5 0;
    sink = None;
    pending = [];
    npending = 0;
    subs = [];
  }

let enabled t = t.enabled

(* Hand-rolled serialization: Printf.sprintf costs ~1.4us per event
   (format interpretation dominates), which matters when a checkpoint
   drains a 256-event Debug backlog. Buffer + string_of_int is ~5x
   cheaper and byte-identical for our field types. *)

let add_field buf = function
  | S s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape s);
      Buffer.add_char buf '"'
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
  | B b -> Buffer.add_string buf (if b then "true" else "false")

(* Epoch seconds with fixed 6-digit fraction (microseconds) — what
   Printf's "%.6f" prints for the non-negative floats we feed it. *)
let add_wall buf w =
  let sec = int_of_float w in
  let us = int_of_float (((w -. float_of_int sec) *. 1e6) +. 0.5) in
  let sec, us = if us >= 1_000_000 then (sec + 1, 0) else (sec, us) in
  Buffer.add_string buf (string_of_int sec);
  Buffer.add_char buf '.';
  let d = string_of_int us in
  for _ = String.length d to 5 do
    Buffer.add_char buf '0'
  done;
  Buffer.add_string buf d

let add_json buf e =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int e.seq);
  Buffer.add_string buf ",\"ts_ns\":";
  Buffer.add_string buf (string_of_int e.ts_ns);
  Buffer.add_string buf ",\"wall_s\":";
  add_wall buf e.wall_s;
  Buffer.add_string buf ",\"level\":\"";
  Buffer.add_string buf (severity_to_string e.level);
  Buffer.add_string buf "\",\"kind\":\"";
  Buffer.add_string buf (Json.escape e.kind);
  Buffer.add_string buf "\",\"data\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape k);
      Buffer.add_string buf "\":";
      add_field buf v)
    e.data;
  Buffer.add_string buf "}}"

let to_json e =
  let buf = Buffer.create 160 in
  add_json buf e;
  Buffer.contents buf

let events_json es = "[" ^ String.concat "," (List.map to_json es) ^ "]"

(* Serialize the queued Debug backlog (oldest first), under the ring
   mutex. One buffer, one write: a drain is a single output call. *)
let drain_pending t oc =
  if t.pending <> [] then begin
    let buf = Buffer.create (t.npending * 128) in
    List.iter
      (fun e ->
        add_json buf e;
        Buffer.add_char buf '\n')
      (List.rev t.pending);
    t.pending <- [];
    t.npending <- 0;
    Buffer.output_buffer oc buf
  end

let log t level ~kind data =
  if t.enabled then begin
    Mutex.lock t.mutex;
    let e =
      {
        seq = t.total;
        ts_ns = Clock.now_ns ();
        wall_s = float_of_int (Clock.wall_ns ()) /. 1e9;
        level;
        kind;
        data;
      }
    in
    t.ring.(t.total mod t.cap) <- Some e;
    t.total <- t.total + 1;
    t.by_level.(severity_rank level) <- t.by_level.(severity_rank level) + 1;
    (match t.sink with
    | Some oc ->
        (try
           if severity_rank level >= severity_rank Info then begin
             drain_pending t oc;
             let buf = Buffer.create 160 in
             add_json buf e;
             Buffer.add_char buf '\n';
             Buffer.output_buffer oc buf;
             flush oc
           end
           else begin
             t.pending <- e :: t.pending;
             t.npending <- t.npending + 1;
             (* backstop only: the owner's monitor thread pumps the
                backlog off the hot path every 50ms *)
             if t.npending >= 4096 then drain_pending t oc
           end
         with Sys_error _ -> ())
    | None -> ());
    let subs = t.subs in
    Mutex.unlock t.mutex;
    List.iter (fun f -> try f e with _ -> ()) subs
  end

let debug t = log t Debug
let info t = log t Info
let warn t = log t Warn
let error t = log t Error
let critical t = log t Critical

let subscribe t f =
  Mutex.lock t.mutex;
  t.subs <- f :: t.subs;
  Mutex.unlock t.mutex

let total t =
  Mutex.lock t.mutex;
  let n = t.total in
  Mutex.unlock t.mutex;
  n

let count_at_least t level =
  Mutex.lock t.mutex;
  let n = ref 0 in
  for i = severity_rank level to 4 do
    n := !n + t.by_level.(i)
  done;
  Mutex.unlock t.mutex;
  !n

(* Last [n] retained events at [level] or above, oldest first. *)
let tail ?(level = Debug) t n =
  Mutex.lock t.mutex;
  let lo = max 0 (t.total - t.cap) in
  let acc = ref [] and got = ref 0 in
  (try
     for seq = t.total - 1 downto lo do
       if !got >= n then raise Exit;
       match t.ring.(seq mod t.cap) with
       | Some e when severity_rank e.level >= severity_rank level ->
           acc := e :: !acc;
           incr got
       | _ -> ()
     done
   with Exit -> ());
  Mutex.unlock t.mutex;
  !acc

(* Serialize any queued Debug backlog to the sink. The service's
   monitor thread calls this every tick so drains happen off the
   commit hot path; a plain buffered write, no flush. *)
let pump t =
  Mutex.lock t.mutex;
  (match t.sink with
  | Some oc -> ( try drain_pending t oc with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  (match t.sink with
  | Some oc ->
      t.sink <- None;
      (try
         drain_pending t oc;
         close_out oc
       with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock t.mutex
