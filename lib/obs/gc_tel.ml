(* See gc_tel.mli. One process-wide consumer of the OCaml 5
   [Runtime_events] ring: GC is a property of the process, not of any
   one service instance, so every embedder shares a refcounted
   singleton — [start]/[stop] nest, the polling thread exists while
   the count is positive.

   The ring carries begin/end span events per domain (the int every
   callback receives is the emitting domain's ring index). We match
   EV_MINOR / EV_MAJOR begin→end pairs into pause durations: a minor
   collection is a genuine stop-the-world pause for that domain, a
   major "pause" is one incremental slice executed on the mutator —
   both are time the domain was not running user code, which is what
   a latency investigation wants. Durations land in per-domain
   {!Hist}s (cumulative since boot) and one shared 10s {!Window}
   whose p99 drives the HEALTH gc-pause reason. Counters accumulate
   allocation/promotion words; EV_EXPLICIT_GC_COMPACT spans count
   compactions (5.1 has no separate compaction phase). *)

module RE = Runtime_events

type dstat = { minor : Hist.t; major : Hist.t }

type state = {
  mu : Mutex.t;
  domains : (int, dstat) Hashtbl.t;
  starts : (int * int, int64) Hashtbl.t;  (* (ring, phase tag) -> begin ts *)
  window : Window.t;  (* 10 x 1s ring; p99 feeds HEALTH *)
  minor_n : int Atomic.t;
  major_n : int Atomic.t;
  compactions : int Atomic.t;
  pause_ns : int Atomic.t;
  alloc_words : int Atomic.t;
  promoted_words : int Atomic.t;
  lost : int Atomic.t;
}

let state = {
  mu = Mutex.create ();
  domains = Hashtbl.create 8;
  starts = Hashtbl.create 8;
  window = Window.create ~slot_ms:1000 ~slots:10 ();
  minor_n = Atomic.make 0;
  major_n = Atomic.make 0;
  compactions = Atomic.make 0;
  pause_ns = Atomic.make 0;
  alloc_words = Atomic.make 0;
  promoted_words = Atomic.make 0;
  lost = Atomic.make 0;
}

let locked f =
  Mutex.lock state.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.mu) f

let dstat_of ring =
  match Hashtbl.find_opt state.domains ring with
  | Some d -> d
  | None ->
    let d = { minor = Hist.create (); major = Hist.create () } in
    Hashtbl.replace state.domains ring d;
    d

(* Only the three phases we track get a tag; everything else is
   ignored before touching any table. *)
let tag_of_phase = function
  | RE.EV_MINOR -> Some 0
  | RE.EV_MAJOR -> Some 1
  | RE.EV_EXPLICIT_GC_COMPACT -> Some 2
  | _ -> None

let record_pause ring tag dur_ns =
  let dur = Int64.to_int dur_ns in
  if dur >= 0 then begin
    Atomic.set state.pause_ns (Atomic.get state.pause_ns + dur);
    locked (fun () ->
        let d = dstat_of ring in
        (match tag with
        | 0 ->
          Atomic.incr state.minor_n;
          Hist.record d.minor (float_of_int dur)
        | 1 ->
          Atomic.incr state.major_n;
          Hist.record d.major (float_of_int dur)
        | _ -> Atomic.incr state.compactions);
        Window.record state.window ~ok:true ~slow:false dur)
  end

let on_begin ring ts phase =
  match tag_of_phase phase with
  | None -> ()
  | Some tag ->
    locked (fun () ->
        Hashtbl.replace state.starts (ring, tag) (RE.Timestamp.to_int64 ts))

let on_end ring ts phase =
  match tag_of_phase phase with
  | None -> ()
  | Some tag -> (
    match locked (fun () ->
        match Hashtbl.find_opt state.starts (ring, tag) with
        | Some t0 ->
          Hashtbl.remove state.starts (ring, tag);
          Some t0
        | None -> None)
    with
    | Some t0 -> record_pause ring tag (Int64.sub (RE.Timestamp.to_int64 ts) t0)
    | None -> ())

let on_counter ring _ts kind v =
  ignore ring;
  match kind with
  | RE.EV_C_MINOR_ALLOCATED ->
    Atomic.set state.alloc_words (Atomic.get state.alloc_words + v)
  | RE.EV_C_MINOR_PROMOTED ->
    Atomic.set state.promoted_words (Atomic.get state.promoted_words + v)
  | _ -> ()

let on_lost ring n =
  ignore ring;
  Atomic.set state.lost (Atomic.get state.lost + n)

let callbacks =
  RE.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end
    ~runtime_counter:on_counter ~lost_events:on_lost ()

(* -- the consumer thread (refcounted singleton) ---------------------- *)

let life = Mutex.create ()
let refs = ref 0
let stop_flag = ref false
let thread : Thread.t option ref = ref None
let enabled_a = Atomic.make false
let cursor : RE.cursor option ref = ref None

let poll_interval_s = 0.05

let poll () =
  match !cursor with
  | Some c -> ( try ignore (RE.read_poll c callbacks None) with _ -> ())
  | None -> ()

let consumer () =
  while not !stop_flag do
    poll ();
    Thread.delay poll_interval_s
  done;
  (* one last drain so nothing recorded before [stop] is lost *)
  poll ()

let start () =
  Mutex.lock life;
  incr refs;
  if !refs = 1 then begin
    (try
       RE.start ();
       if !cursor = None then cursor := Some (RE.create_cursor None);
       stop_flag := false;
       thread := Some (Thread.create consumer ());
       Atomic.set enabled_a true
     with _ ->
       (* a runtime without events support degrades to "disabled" *)
       Atomic.set enabled_a false);
  end;
  Mutex.unlock life

let stop () =
  Mutex.lock life;
  if !refs > 0 then begin
    decr refs;
    if !refs = 0 then begin
      stop_flag := true;
      (match !thread with
      | Some t ->
        Thread.join t;
        thread := None
      | None -> ());
      Atomic.set enabled_a false
    end
  end;
  Mutex.unlock life

let enabled () = Atomic.get enabled_a

(* -- queries --------------------------------------------------------- *)

let total_pause_ns () = Atomic.get state.pause_ns
let pauses_total () = Atomic.get state.minor_n + Atomic.get state.major_n

(* Deterministic-health test hook (same pattern as
   [inject_fsync_delay]): an injected pause is a floor on the
   reported 10s p99, and [clear_injected] reverts it — unlike
   recording into the real window, the injection cannot leak into a
   later test's health check. *)
let injected_ns = Atomic.make 0

let inject_pause ~ns = Atomic.set injected_ns ns
let clear_injected () = Atomic.set injected_ns 0

let pause_p99_10s_ns () =
  let s = Window.snapshot state.window in
  Float.max s.Window.p99_ns (float_of_int (Atomic.get injected_ns))

let stats_json () =
  let w = Window.snapshot state.window in
  let dom_json (ring, d) =
    Printf.sprintf
      "{\"domain\":%d,\"minor\":{\"pauses\":%d,%s},\"major\":{\"slices\":%d,%s}}"
      ring (Hist.count d.minor)
      (Hist.to_json_fields d.minor)
      (Hist.count d.major)
      (Hist.to_json_fields d.major)
  in
  let doms =
    locked (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) state.domains []
        |> List.sort compare)
  in
  Printf.sprintf
    "{\"enabled\":%b,\"minor_collections\":%d,\"major_slices\":%d,\"compactions\":%d,\"pause_ns_total\":%d,\"allocated_words\":%d,\"promoted_words\":%d,\"events_lost\":%d,\"pause_p99_10s_ns\":%.0f,\"pause_rate_10s\":%.2f,\"domains\":[%s]}"
    (enabled ()) (Atomic.get state.minor_n) (Atomic.get state.major_n)
    (Atomic.get state.compactions)
    (Atomic.get state.pause_ns)
    (Atomic.get state.alloc_words)
    (Atomic.get state.promoted_words)
    (Atomic.get state.lost)
    w.Window.p99_ns w.Window.rate
    (String.concat "," (List.map dom_json doms))

let to_prom p =
  Prom.counter p ~help:"Minor collections observed since boot."
    "xqbang_gc_minor_collections_total"
    (Atomic.get state.minor_n);
  Prom.counter p ~help:"Major slices executed since boot."
    "xqbang_gc_major_slices_total"
    (Atomic.get state.major_n);
  Prom.counter p ~help:"Heap compactions since boot."
    "xqbang_gc_compactions_total"
    (Atomic.get state.compactions);
  Prom.counter p ~help:"Nanoseconds spent in GC pauses since boot."
    "xqbang_gc_pause_ns_total"
    (Atomic.get state.pause_ns);
  Prom.counter p ~help:"Words allocated on minor heaps since boot."
    "xqbang_gc_allocated_words_total"
    (Atomic.get state.alloc_words);
  Prom.counter p ~help:"Words promoted to the major heap since boot."
    "xqbang_gc_promoted_words_total"
    (Atomic.get state.promoted_words);
  Prom.counter p ~help:"Runtime events dropped by the consumer."
    "xqbang_gc_events_lost_total" (Atomic.get state.lost);
  Prom.gauge p ~help:"p99 GC pause over the sliding 10s window (ns)."
    "xqbang_gc_pause_p99_10s_ns"
    (pause_p99_10s_ns ());
  let doms =
    locked (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) state.domains []
        |> List.sort compare)
  in
  List.iter
    (fun (ring, d) ->
      let dom = string_of_int ring in
      List.iter
        (fun (gen, h) ->
          Prom.summary p
            ~help:"Per-domain GC pause durations since boot (ns)."
            ~labels:[ ("domain", dom); ("gen", gen) ]
            ~quantiles:
              [
                (0.5, Hist.percentile h 0.5);
                (0.99, Hist.percentile h 0.99);
              ]
            ~sum:(Hist.sum h) ~count:(Hist.count h) "xqbang_gc_pause_ns")
        [ ("minor", d.minor); ("major", d.major) ])
    doms
