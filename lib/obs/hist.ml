(* Fixed-footprint latency histogram.

   The previous metrics kept every latency sample in a growing array,
   so a long-lived server accumulated memory without bound and
   percentile queries sorted an ever-larger array. This replaces it
   with a two-regime structure of constant size:

   - the first [exact_cap] samples are stored verbatim, so small
     populations (tests, short benches) get exact percentiles;
   - beyond that, samples only bump log-scale bucket counters:
     [buckets] buckets at [sub] per power of two, i.e. each bucket
     spans a ratio of 2^(1/sub) (~19% relative error at sub=4),
     covering 2^-32 .. 2^32 in the recorded unit.

   Percentiles use the nearest-rank definition: the ceil(p*n)-th
   smallest sample (1-based) — note ceil, not truncation; truncating
   p*n under-reports high percentiles on small n (e.g. p95 of 10
   samples must be the 10th, not the 9th).

   Not thread-safe: callers (Metrics) synchronize. *)

type t = {
  exact_cap : int;
  mutable exact : float array;  (* first [exact_cap] samples *)
  mutable exact_ok : bool;  (* exact holds ALL samples so far *)
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  mutable min_v : float;
  counts : int array;  (* log-scale buckets, always maintained *)
}

let sub = 4  (* buckets per power of two *)
let buckets = 256
let low_exp = -32  (* bucket 0 lower bound: 2^low_exp *)

let create ?(exact_cap = 512) () =
  {
    exact_cap;
    exact = [||];
    exact_ok = true;
    count = 0;
    sum = 0.;
    max_v = neg_infinity;
    min_v = infinity;
    counts = Array.make buckets 0;
  }

let log2 x = log x /. log 2.

let bucket_of v =
  if v <= 0. then 0
  else
    let i = int_of_float (floor ((log2 v -. float_of_int low_exp) *. float_of_int sub)) in
    max 0 (min (buckets - 1) i)

(* Geometric midpoint of bucket [i] — the value reported once the
   exact prefix is exhausted. *)
let bucket_mid i =
  Float.pow 2. ((float_of_int i +. 0.5) /. float_of_int sub +. float_of_int low_exp)

let record t v =
  if t.count < t.exact_cap then begin
    if Array.length t.exact = 0 then t.exact <- Array.make t.exact_cap 0.;
    t.exact.(t.count) <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v;
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let max_value t = if t.count = 0 then 0. else t.max_v
let min_value t = if t.count = 0 then 0. else t.min_v

(* Nearest-rank percentile: the r-th smallest sample, r = ceil(p*n),
   clamped to [1, n]. *)
let percentile t p =
  if t.count = 0 then 0.
  else begin
    let r =
      let r = int_of_float (ceil (p *. float_of_int t.count)) in
      max 1 (min t.count r)
    in
    if t.count <= t.exact_cap && t.exact_ok then begin
      let a = Array.sub t.exact 0 t.count in
      Array.sort compare a;
      a.(r - 1)
    end
    else begin
      let cum = ref 0 and res = ref t.max_v and found = ref false in
      (try
         for i = 0 to buckets - 1 do
           cum := !cum + t.counts.(i);
           if !cum >= r then begin
             res := bucket_mid i;
             found := true;
             raise Exit
           end
         done
       with Exit -> ());
      (* clamp the bucket estimate to the observed range *)
      if !found then Float.max t.min_v (Float.min t.max_v !res) else t.max_v
    end
  end

let reset t =
  t.count <- 0;
  t.sum <- 0.;
  t.max_v <- neg_infinity;
  t.min_v <- infinity;
  t.exact_ok <- true;
  Array.fill t.counts 0 buckets 0

(* Fold [src] into [into]. Bucket counters always add exactly; the
   exact-sample prefix survives only when [src] is still fully exact
   AND the union fits [into]'s capacity — otherwise [into] degrades
   to bucket-estimate percentiles (exact_ok = false guards the case
   where the union is numerically under [into]'s cap but [src] had
   already overflowed its own, so its verbatim samples are gone). *)
let merge ~into src =
  if into == src then invalid_arg "Hist.merge: src and destination alias";
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  (if src.count <= src.exact_cap && src.exact_ok
      && into.count + src.count <= into.exact_cap && into.exact_ok
   then begin
     if Array.length into.exact = 0 && src.count > 0 then
       into.exact <- Array.make into.exact_cap 0.;
     Array.blit src.exact 0 into.exact into.count src.count
   end
   else if src.count > 0 then into.exact_ok <- false);
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.min_v < into.min_v then into.min_v <- src.min_v

(* Standard JSON fragment: comma-separated fields without braces, so
   callers can splice extra fields alongside. *)
let to_json_fields t =
  Printf.sprintf
    "\"count\":%d,\"mean\":%.6f,\"p50\":%.6f,\"p90\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f"
    t.count (mean t) (percentile t 0.50) (percentile t 0.90) (percentile t 0.95)
    (percentile t 0.99) (max_value t)
