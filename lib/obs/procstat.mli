(** Process-level gauges (Linux /proc; 0 where unavailable). *)

(** Resident set size in bytes. *)
val rss_bytes : unit -> int

(** Open file descriptors. *)
val fd_count : unit -> int
