(** Fixed-footprint latency histogram.

    Exact percentiles for the first [exact_cap] samples; log-scale
    buckets (4 per power of two, ~19% relative error, range
    2^-32..2^32) afterwards. Constant memory regardless of sample
    count. Not thread-safe — callers synchronize. *)

type t

val create : ?exact_cap:int -> unit -> t
val record : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

(** [percentile t p] with [p] in [0,1]: nearest-rank (the
    ceil(p*n)-th smallest sample) — exact while within [exact_cap],
    bucket-midpoint estimate after. 0 when empty. *)
val percentile : t -> float -> float

val reset : t -> unit

(** [merge ~into src] folds [src]'s population into [into] (counts,
    sum, min/max and log buckets add exactly; [src] is unchanged).
    Percentiles of the union stay sample-exact while both sides'
    verbatim prefixes cover their populations and the union fits
    [into]'s capacity; otherwise [into] switches permanently (until
    {!reset}) to bucket-midpoint estimates. Merging a histogram into
    itself raises [Invalid_argument]. *)
val merge : into:t -> t -> unit

(** Comma-separated JSON fields (count/mean/p50/p90/p95/p99/max),
    without surrounding braces. *)
val to_json_fields : t -> string
