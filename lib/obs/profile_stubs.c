/* SIGPROF sampling support for the continuous profiler.

   The interval timer is the whole trick: ITIMER_PROF counts CPU time
   (user + system) consumed by the process and delivers SIGPROF when
   the interval expires, so a blocked process generates no samples and
   an idle profiler costs exactly nothing. The OCaml side owns the
   signal handler; this stub only arms/disarms the timer. */

#include <caml/mlvalues.h>
#include <string.h>
#include <sys/time.h>
#include <unistd.h>

/* Arm ITIMER_PROF at [hz] samples per CPU-second; hz <= 0 disarms.
   Returns true on success (setitimer can only fail on a bogus
   interval, which the OCaml side already rejects). */
CAMLprim value xqb_prof_set_itimer(value hz)
{
  struct itimerval it;
  long h = Long_val(hz);
  memset(&it, 0, sizeof it);
  if (h > 0) {
    long us = 1000000L / h;
    if (us < 1) us = 1;
    it.it_interval.tv_sec = us / 1000000L;
    it.it_interval.tv_usec = us % 1000000L;
    it.it_value = it.it_interval;
  }
  return Val_bool(setitimer(ITIMER_PROF, &it, NULL) == 0);
}

/* Page size for the RSS gauge (/proc/self/statm reports pages). */
CAMLprim value xqb_prof_page_size(value unit)
{
  long sz = sysconf(_SC_PAGESIZE);
  return Val_long(sz > 0 ? sz : 4096);
}
