(** Fixed-footprint sliding-window metrics: a ring of [slots] slots
    of [slot_ms] each over {!Hist}, recycled in place as monotonic
    time advances. Constant memory at any request rate; snapshots
    merge the live slots ({!Hist.merge}) so window percentiles are
    log-bucket estimates (~19% relative error). Thread-safe, and
    sharded by recording domain: concurrent recorders lock only
    their own shard, so worker domains never serialize on a global
    mutex; a snapshot merges every shard.

    [now_ns] is injectable (deterministic tests); it must come from
    the same non-decreasing scale as {!Clock.now_ns} (the default). *)

type t

val create : slot_ms:int -> slots:int -> unit -> t

(** Total window span in seconds ([slot_ms * slots / 1000]). *)
val span_s : t -> float

(** Record one sample: [ok] = the request succeeded, [slow] = its
    latency violated the SLO target (counted toward latency burn). *)
val record : ?now_ns:int -> t -> ok:bool -> slow:bool -> int -> unit

type snap = {
  count : int;
  errors : int;
  slow : int;
  span_s : float;
  rate : float;  (** samples/s over the full window span *)
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
  err_frac : float;  (** errors/count; 0 when empty *)
  slow_frac : float;
}

(** Merge every slot still inside the window into one view. The
    newest (partial) slot is included, so [rate] slightly
    under-reports while it fills. *)
val snapshot : ?now_ns:int -> t -> snap

(** SLO burn rate: observed failure fraction over the allowed
    fraction (e.g. err_frac/0.01 for a 99% availability target).
    1.0 = consuming error budget exactly at the sustainable rate;
    0 on an empty window. *)
val burn : frac:float -> budget_frac:float -> float

val snap_json : snap -> string
