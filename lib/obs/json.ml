(* A small strict JSON parser (RFC 8259 subset: no trailing commas,
   no comments, fully-validated escapes) plus the escaping helper the
   JSON emitters share.

   This is the well-formedness checker behind the test suite's
   round-trip assertions (test/helpers.ml) and bench E17's trace
   artifact validation — everything the tracer, metrics and the
   STATS/TRACE wire commands emit must parse here. It is not a
   general-purpose JSON library: numbers come back as floats and
   object member order is preserved but not deduplicated. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Parse_error of string

(* -- escaping (shared by the emitters) ------------------------------ *)

let needs_escape s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match String.unsafe_get s i with
    | '"' | '\\' -> true
    | c when Char.code c < 0x20 -> true
    | _ -> go (i + 1)
  in
  go 0

let escape s =
  if not (needs_escape s) then s
  else
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* -- parsing -------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st "expected %C, got %C" c d
  | None -> fail st "expected %C, got end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid \\u escape"

(* Decode a string body (opening quote consumed). \uXXXX escapes are
   re-encoded as UTF-8; surrogate pairs are combined. *)
let parse_string st =
  let buf = Buffer.create 16 in
  let rec uchar () =
    let d = ref 0 in
    for _ = 1 to 4 do
      match peek st with
      | Some c ->
        d := (!d * 16) + hex_digit st c;
        advance st
      | None -> fail st "truncated \\u escape"
    done;
    !d
  and add_utf8 cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  and loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "truncated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = uchar () in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: require the low half *)
            expect st '\\';
            expect st 'u';
            let lo = uchar () in
            if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate";
            add_utf8 (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "unpaired surrogate"
          else add_utf8 cp
        | c -> fail st "invalid escape \\%C" c);
        loop ())
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let accept_digits () =
    let had = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
        had := true;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if not !had then fail st "expected digits"
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  (* int part: 0 | [1-9][0-9]* *)
  (match peek st with
  | Some '0' -> advance st
  | Some '1' .. '9' -> accept_digits ()
  | _ -> fail st "invalid number");
  (match peek st with
  | Some '.' ->
    advance st;
    accept_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    accept_digits ()
  | _ -> ());
  float_of_string (String.sub st.src start (st.pos - start))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        expect st '"';
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some '"' ->
    advance st;
    Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st "unexpected character %C" c

(* Parse a complete document: one value, nothing but whitespace after. *)
let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "at %d: trailing garbage" st.pos)
    else Ok v
  | exception Parse_error m -> Error m

let parse_exn s =
  match parse s with Ok v -> v | Error m -> raise (Parse_error m)

(* -- navigation helpers (for tests and validators) ------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let rec path v = function
  | [] -> Some v
  | k :: rest -> ( match member k v with Some v' -> path v' rest | None -> None)

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None
let to_list = function Arr l -> l | _ -> []
