(** Per-query span tracer with Chrome trace-event export.

    One tracer is created per job; recording is guarded by a
    per-trace mutex only (no global lock on any hot path). A
    disabled tracer costs a single branch per instrumentation point.

    Spans form a tree via parent links maintained by the
    begin/end stack; timestamps come from the monotonic {!Clock},
    relative to trace creation. *)

type t

(** Fresh enabled tracer; at most [cap] spans are kept (further
    spans are counted as dropped). *)
val create : ?cap:int -> unit -> t

(** The shared do-nothing tracer: every operation is one branch. *)
val disabled : t

val enabled : t -> bool

(** Process-unique trace label (["t17"]) — stamped into update
    provenance and the slow-effect log so they can be matched with
    the TRACE wire command's output. The disabled tracer is
    ["t-off"]. *)
val id : t -> string

(** Open a span (parent = innermost open span). Returns a span id;
    [-1] on a disabled tracer. *)
val begin_span : ?cat:string -> t -> string -> int

(** Close a span by id, optionally attaching key/value args (e.g.
    budget fuel consumed during the phase). Ids from a disabled
    tracer are ignored. *)
val end_span : ?args:(string * string) list -> t -> int -> unit

(** [with_span t name f] = begin / [f ()] / end (exception-safe). *)
val with_span :
  ?cat:string -> ?args:(string * string) list -> t -> string -> (unit -> 'a) -> 'a

(** Record a span retroactively with explicit timestamps (queue wait
    is only known at dequeue time). [start_ns] is on the {!Clock}
    scale. *)
val add_span :
  ?cat:string ->
  ?parent:int ->
  ?args:(string * string) list ->
  t ->
  name:string ->
  start_ns:int ->
  dur_ns:int ->
  unit ->
  unit

(** Zero-duration marker (e.g. a plan-cache hit). *)
val instant : ?cat:string -> ?args:(string * string) list -> t -> string -> unit

val span_count : t -> int

(** Spans dropped at the cap. *)
val dropped : t -> int

type span = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  tid : int;
  start_ns : int;
  mutable dur_ns : int;  (** [-1] while open *)
  mutable args : (string * string) list;
}

(** All recorded spans, oldest first. *)
val spans : t -> span list

(** Total closed-span nanoseconds per span name (first-occurrence
    order) — feeds the service's per-phase latency histograms. *)
val phase_totals : t -> (string * int) list

(** Serialize as Chrome trace-event JSON (ph:"X" complete events,
    microsecond timestamps, parent links in [args]). Loadable in
    chrome://tracing / Perfetto. *)
val to_chrome_json : ?pid:int -> t -> string
