(** Strict JSON well-formedness checker and the emitters' shared
    escaping helper.

    The parser accepts exactly RFC 8259 documents (no trailing
    commas, no comments, validated escapes and surrogate pairs); it
    backs the test suite's round-trip assertions and bench E17's
    trace artifact validation. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Parse_error of string

(** Escape a string for inclusion in a JSON string literal (quotes,
    backslashes, control characters). *)
val escape : string -> string

(** Parse a complete document (trailing garbage is an error). *)
val parse : string -> (v, string) result

(** @raise Parse_error *)
val parse_exn : string -> v

val member : string -> v -> v option

(** Follow a chain of object keys. *)
val path : v -> string list -> v option

val to_string_opt : v -> string option
val to_float_opt : v -> float option

(** Array elements ([[]] for non-arrays). *)
val to_list : v -> v list
