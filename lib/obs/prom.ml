(* Prometheus text-exposition (version 0.0.4) emitter, shared by
   every layer that contributes to METRICS PROM (service metrics,
   WAL/checkpoint gauges, replica lag, window gauges).

   Before this, each layer hand-rolled its own "# TYPE name kind\n
   name value" strings — which is how the exposition ended up with
   no # HELP lines at all and nothing preventing an unlabeled
   counter without the _total suffix. Centralizing the emitter makes
   the conventions load-bearing:

   - a counter name must end in "_total" (Invalid_argument otherwise);
   - every family gets exactly one # HELP and one # TYPE line, the
     first time it is touched (deduped by name across layers);
   - label values are escaped per the format spec (backslash, quote,
     newline);
   - metric and label names are validated against the spec grammar.

   test_service.ml parses the whole page back and fails on any
   violation, so the discipline is checked end to end. *)

type t = {
  buf : Buffer.t;
  seen : (string, string) Hashtbl.t;  (* family name -> declared type *)
}

let create () = { buf = Buffer.create 4096; seen = Hashtbl.create 32 }
let contents t = Buffer.contents t.buf

let valid_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text escaping: only backslash and newline, per the spec. *)
let help_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let declare t ~name ~typ ~help =
  if not (valid_name name) then invalid_arg ("Prom: bad metric name " ^ name);
  match Hashtbl.find_opt t.seen name with
  | Some typ' ->
      if typ' <> typ then
        invalid_arg (Printf.sprintf "Prom: %s declared both %s and %s" name typ' typ)
  | None ->
      Hashtbl.add t.seen name typ;
      Buffer.add_string t.buf
        (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (help_escape help) name typ)

let labels_str = function
  | [] -> ""
  | l ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               if not (valid_name k) then invalid_arg ("Prom: bad label name " ^ k);
               Printf.sprintf "%s=\"%s\"" k (label_escape v))
             l)
      ^ "}"

let sample t ?(labels = []) name value =
  Buffer.add_string t.buf (Printf.sprintf "%s%s %s\n" name (labels_str labels) value)

let counter t ~help ?(labels = []) name v =
  if not (String.length name > 6 && Filename.check_suffix name "_total") then
    invalid_arg ("Prom: counter " ^ name ^ " must end in _total");
  declare t ~name ~typ:"counter" ~help;
  sample t ~labels name (string_of_int v)

let gauge_i t ~help ?(labels = []) name v =
  declare t ~name ~typ:"gauge" ~help;
  sample t ~labels name (string_of_int v)

let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%g" v

let gauge t ~help ?(labels = []) name v =
  declare t ~name ~typ:"gauge" ~help;
  sample t ~labels name (fmt_float v)

(* One summary family member: quantile samples plus _sum/_count.
   Values are pre-scaled by the caller (ns vs seconds); [fmt] renders
   them (default %.0f — the ns convention). *)
let summary t ~help ?(labels = []) ?(fmt = fun v -> Printf.sprintf "%.0f" v) name
    ~quantiles ~sum ~count =
  declare t ~name ~typ:"summary" ~help;
  List.iter
    (fun (q, v) ->
      sample t ~labels:(labels @ [ ("quantile", Printf.sprintf "%g" q) ]) name (fmt v))
    quantiles;
  sample t ~labels (name ^ "_sum") (fmt sum);
  sample t ~labels (name ^ "_count") (string_of_int count)
