(* Process-level gauges for STATS / METRICS PROM. Linux-first
   (/proc), degrading to zero elsewhere — a missing gauge must never
   break the exposition. *)

external page_size_stub : unit -> int = "xqb_prof_page_size"

let page_size = lazy (page_size_stub ())

(* Resident set size in bytes: field 2 of /proc/self/statm, in
   pages. *)
let rss_bytes () =
  match open_in "/proc/self/statm" with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Scanf.bscanf (Scanf.Scanning.from_channel ic) " %d %d"
              (fun _size resident -> resident * Lazy.force page_size)
        with _ -> 0)
  | exception Sys_error _ -> 0

(* Open descriptors: directory entries of /proc/self/fd (one of them
   is the readdir fd itself; close enough for a gauge). *)
let fd_count () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Array.length entries
  | exception Sys_error _ -> 0
