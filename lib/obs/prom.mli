(** Shared Prometheus text-exposition (0.0.4) emitter. All layers
    contributing to METRICS PROM append through one [t] so the
    format conventions hold page-wide: counters must end in
    [_total] (checked, [Invalid_argument]), every family gets
    [# HELP]/[# TYPE] exactly once (deduped across layers; a
    same-name re-declaration with a different type raises), label
    values are escaped, metric/label names validated. *)

type t

val create : unit -> t
val contents : t -> string
val label_escape : string -> string

val counter : t -> help:string -> ?labels:(string * string) list -> string -> int -> unit
val gauge_i : t -> help:string -> ?labels:(string * string) list -> string -> int -> unit
val gauge : t -> help:string -> ?labels:(string * string) list -> string -> float -> unit

(** Quantile samples plus [_sum]/[_count]. Values pre-scaled by the
    caller; [fmt] renders them (default ["%.0f"], the ns
    convention). *)
val summary :
  t ->
  help:string ->
  ?labels:(string * string) list ->
  ?fmt:(float -> string) ->
  string ->
  quantiles:(float * float) list ->
  sum:float ->
  count:int ->
  unit

(** Append one raw sample line; the family must have been declared
    by a prior call for the page to lint. *)
val sample : t -> ?labels:(string * string) list -> string -> string -> unit

(** Emit a family's [# HELP]/[# TYPE] header without a sample — for
    families that exist but are empty right now (no phases recorded
    yet, no peers connected). Idempotent per family; a re-declaration
    with a different [typ] raises. *)
val declare : t -> name:string -> typ:string -> help:string -> unit
