(** Continuous sampling CPU profiler.

    One process-wide profiler built on [setitimer(ITIMER_PROF)] +
    SIGPROF: the kernel charges the interval against CPU time
    actually consumed, so an idle process takes no samples and a
    stopped profiler costs nothing at all. Each sample captures the
    OCaml backtrace of whichever domain executes the signal handler
    (statistically, a busy one) plus that domain's current
    phase/operator label, and folds it straight into an aggregated
    stack table — memory stays bounded no matter how long the
    profiler runs.

    Labels are domain-local: {!with_phase} tags the query phases
    (compile / run / snap-apply / wal), {!with_op} nests a plan
    operator id beneath the phase while [Exec] runs a physical
    operator. Both save and restore, so they compose.

    All entry points are safe to call from any thread; the signal
    handler itself never blocks (it drops the sample when the
    aggregation lock is contended — see [dropped] in {!stat_json}). *)

(** {1 Folded-stack encoding}

    The flamegraph "collapsed" format: one line per distinct stack,
    root-first frames joined with [';'] and a trailing [' '] +
    count. Frame names are escaped so arbitrary bytes round-trip
    (backslash, semicolon, space, tab, CR and LF have two-character
    escapes); names without those bytes are unchanged, which keeps
    the output directly consumable by flamegraph.pl / speedscope. *)
module Folded : sig
  val encode_frame : string -> string
  val decode_frame : string -> string

  (** [encode_line frames count]: frames root-first. *)
  val encode_line : string list -> int -> string

  (** Inverse of {!encode_line}; [None] on a malformed line. *)
  val decode_line : string -> (string list * int) option
end

(** {1 Lifecycle} *)

(** Set the default sampling rate used by {!start} when no [hz] is
    given (boot-time wiring for [serve --profile-hz]). Raises
    [Invalid_argument] on a non-positive rate. *)
val configure : hz:int -> unit

(** Arm the timer and install the SIGPROF handler. Returns [false]
    (and changes nothing) when already running — start is
    idempotent. Raises [Invalid_argument] on a non-positive [hz]. *)
val start : ?hz:int -> unit -> bool

(** Disarm the timer and restore the previous SIGPROF disposition.
    Accumulated samples are kept (a dump after stop still works);
    returns [false] when not running. *)
val stop : unit -> bool

val running : unit -> bool

(** The rate the running profiler was started at; the configured
    default when stopped. *)
val hz : unit -> int

(** Drop every accumulated sample and counter (not the running
    state). *)
val reset : unit -> unit

(** {1 Labels} *)

(** [with_phase name f] runs [f] with this domain's sample label set
    to [name]; nested calls shadow and restore. One DLS store each
    way — cheap enough to leave on permanently. *)
val with_phase : string -> (unit -> 'a) -> 'a

(** [with_op id f]: tag samples inside [f] with plan operator [id]
    (rendered as an ["op<id>"] frame under the current phase). Call
    sites should gate on {!running} — unlike phases, operator labels
    sit on per-tuple paths. *)
val with_op : int -> (unit -> 'a) -> 'a

(** {1 Inspection} *)

val samples : unit -> int

(** Samples dropped because the handler found the aggregation lock
    held (never blocks) or the stack table at capacity. *)
val dropped : unit -> int

(** Per-phase sample counts, unlabeled samples under ["other"]. *)
val phase_counts : unit -> (string * int) list

(** [diff_counts before after]: per-phase deltas, dropping zeros —
    the per-job attribution primitive. *)
val diff_counts :
  (string * int) list -> (string * int) list -> (string * int) list

(** The aggregated profile as folded-stack text (see {!Folded}),
    sorted for determinism. *)
val dump_folded : unit -> string

(** The same data as JSON:
    [{"hz":..,"samples":..,"dropped":..,"stacks":[{"stack":[..],"count":..},..]}]. *)
val dump_json : unit -> string

(** Small status document: running, hz, samples, dropped, distinct
    stacks and per-phase counts. *)
val stat_json : unit -> string

(** Write {!dump_folded} to a file (for [xqbang run --profile]). *)
val write_folded : string -> unit
