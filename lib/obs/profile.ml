(* See profile.mli for the contract. The shape here:

   A SIGPROF tick runs as an ordinary OCaml signal handler, i.e. at
   the next safepoint of whichever domain the runtime picks — under
   ITIMER_PROF that is a domain burning CPU, which is exactly the one
   worth sampling. The handler captures [Printexc.get_callstack],
   reads this domain's phase/op label out of DLS, and folds the
   sample into the shared stack table under [Mutex.try_lock]: a
   contended lock (the table is being dumped, or another domain's
   tick got there first) drops the sample and bumps a counter rather
   than ever blocking inside a handler.

   Frame resolution (raw entry -> names) is memoized per raw entry:
   after the first few ticks through a hot path every sample is a
   hashtable hit, so steady-state cost per tick is the callstack
   capture plus a handful of lookups — the 97 Hz default stays well
   under the 3% budget bench E24 enforces. *)

external set_itimer : int -> bool = "xqb_prof_set_itimer"

(* -- folded-stack encoding ------------------------------------------ *)

module Folded = struct
  (* Escape exactly the bytes that carry structure in the collapsed
     format (';' between frames, ' ' before the count, newlines
     between stacks) plus backslash itself. Everything else passes
     through, so ordinary OCaml frame names are unchanged. *)
  let encode_frame s =
    let n = String.length s in
    let rec plain i = i >= n || (match s.[i] with
      | '\\' | ';' | ' ' | '\t' | '\n' | '\r' -> false
      | _ -> plain (i + 1))
    in
    if plain 0 then s
    else begin
      let buf = Buffer.create (n + 8) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buf "\\\\"
          | ';' -> Buffer.add_string buf "\\;"
          | ' ' -> Buffer.add_string buf "\\s"
          | '\t' -> Buffer.add_string buf "\\t"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\r' -> Buffer.add_string buf "\\r"
          | c -> Buffer.add_char buf c)
        s;
      Buffer.contents buf
    end

  let decode_frame s =
    let n = String.length s in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
         | '\\' -> Buffer.add_char buf '\\'
         | ';' -> Buffer.add_char buf ';'
         | 's' -> Buffer.add_char buf ' '
         | 't' -> Buffer.add_char buf '\t'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
         i := !i + 2
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf

  let encode_line frames count =
    String.concat ";" (List.map encode_frame frames)
    ^ " " ^ string_of_int count

  (* Split on unescaped ';', respecting backslash escapes. *)
  let split_frames s =
    let out = ref [] in
    let buf = Buffer.create 32 in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '\\' when !i + 1 < n ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf s.[!i + 1];
        i := !i + 2
      | ';' ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf;
        incr i
      | c ->
        Buffer.add_char buf c;
        incr i)
    done;
    out := Buffer.contents buf :: !out;
    List.rev_map decode_frame !out

  let decode_line line =
    match String.rindex_opt line ' ' with
    | None -> None
    | Some i -> (
      let stack = String.sub line 0 i in
      let count = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt count with
      | Some c when c >= 0 -> Some (split_frames stack, c)
      | _ -> None)
end

(* -- profiler state -------------------------------------------------- *)

let max_depth = 64

(* Distinct aggregated stacks are bounded so a pathological workload
   (e.g. deeply polymorphic recursion) cannot grow the table without
   limit; overflow drops the sample and counts it. *)
let max_stacks = 65536

let mu = Mutex.create ()
let running_a = Atomic.make false
let cfg_hz = Atomic.make 97
let cur_hz = Atomic.make 0
let samples_a = Atomic.make 0
let dropped_a = Atomic.make 0

(* folded key (already escaped, ';'-joined, label-rooted) -> count *)
let stacks : (string, int ref) Hashtbl.t = Hashtbl.create 1024

(* phase label -> samples *)
let phases : (string, int ref) Hashtbl.t = Hashtbl.create 16

(* raw entry -> resolved frame names, leaf-first *)
let frame_cache : (Printexc.raw_backtrace_entry, string list) Hashtbl.t =
  Hashtbl.create 4096

let prev_handler : Sys.signal_behavior option ref = ref None

(* Domain-local labels. A worker domain runs one job at a time, so
   its phase ref names what that domain is doing right now; the
   handler executes on the sampled domain and reads its own DLS. *)
let phase_key = Domain.DLS.new_key (fun () -> ref "")
let op_key = Domain.DLS.new_key (fun () -> ref (-1))

let with_phase name f =
  let r = Domain.DLS.get phase_key in
  let prev = !r in
  r := name;
  match f () with
  | v ->
    r := prev;
    v
  | exception e ->
    r := prev;
    raise e

let with_op id f =
  let r = Domain.DLS.get op_key in
  let prev = !r in
  r := id;
  match f () with
  | v ->
    r := prev;
    v
  | exception e ->
    r := prev;
    raise e

(* -- sampling -------------------------------------------------------- *)

(* The handler's own frames sit at the leaf of every capture; strip
   them so flamegraphs root at the interrupted code. *)
let is_self_frame name =
  let pre p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  pre "Xqb_obs__Profile" || pre "Xqb_obs.Profile" || pre "Stdlib.Printexc"
  || pre "Printexc"

let resolve_entry e =
  match Hashtbl.find_opt frame_cache e with
  | Some names -> names
  | None ->
    let names =
      match Printexc.backtrace_slots_of_raw_entry e with
      | None -> [ "??" ]
      | Some slots ->
        let out = ref [] in
        Array.iter
          (fun slot ->
            match Printexc.Slot.name slot with
            | Some n -> out := n :: !out
            | None -> (
              match Printexc.Slot.location slot with
              | Some l ->
                out :=
                  Printf.sprintf "%s:%d" l.Printexc.filename l.Printexc.line_number
                  :: !out
              | None -> ()))
          slots;
        (match !out with [] -> [ "??" ] | l -> List.rev l)
    in
    Hashtbl.replace frame_cache e names;
    names

(* Fold one capture into the tables. Caller holds [mu]. *)
let record_locked bt phase op =
  let entries = Printexc.raw_backtrace_entries bt in
  (* leaf-first accumulation, then strip our own frames off the leaf *)
  let leaf_first = ref [] in
  for i = Array.length entries - 1 downto 0 do
    List.iter
      (fun n -> leaf_first := n :: !leaf_first)
      (resolve_entry entries.(i))
  done;
  let rec strip = function
    | n :: rest when is_self_frame n -> strip rest
    | frames -> frames
  in
  let frames = List.rev (strip !leaf_first) in
  let phase = if phase = "" then "other" else phase in
  let root = if op >= 0 then [ phase; "op" ^ string_of_int op ] else [ phase ] in
  let key =
    String.concat ";" (List.map Folded.encode_frame (root @ frames))
  in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r ->
      incr r;
      true
    | None ->
      if Hashtbl.length tbl >= max_stacks then false
      else begin
        Hashtbl.replace tbl k (ref 1);
        true
      end
  in
  if bump stacks key then begin
    ignore (bump phases phase);
    Atomic.incr samples_a
  end
  else Atomic.incr dropped_a

let handler _signum =
  if Atomic.get running_a then begin
    let bt = Printexc.get_callstack max_depth in
    let phase = !(Domain.DLS.get phase_key) in
    let op = !(Domain.DLS.get op_key) in
    if Mutex.try_lock mu then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mu)
        (fun () -> record_locked bt phase op)
    else Atomic.incr dropped_a
  end

(* -- lifecycle ------------------------------------------------------- *)

let configure ~hz =
  if hz <= 0 then invalid_arg "Profile.configure: hz must be positive";
  Atomic.set cfg_hz hz

let running () = Atomic.get running_a
let hz () = if running () then Atomic.get cur_hz else Atomic.get cfg_hz

let start ?hz () =
  let h = match hz with Some h -> h | None -> Atomic.get cfg_hz in
  if h <= 0 then invalid_arg "Profile.start: hz must be positive";
  Mutex.lock mu;
  let fresh = not (Atomic.get running_a) in
  if fresh then begin
    prev_handler := Some (Sys.signal Sys.sigprof (Sys.Signal_handle handler));
    Atomic.set cur_hz h;
    Atomic.set running_a true;
    ignore (set_itimer h)
  end;
  Mutex.unlock mu;
  fresh

let stop () =
  Mutex.lock mu;
  let was = Atomic.get running_a in
  if was then begin
    ignore (set_itimer 0);
    Atomic.set running_a false;
    (match !prev_handler with
    | Some b -> ( try Sys.set_signal Sys.sigprof b with Invalid_argument _ -> ())
    | None -> ());
    prev_handler := None
  end;
  Mutex.unlock mu;
  was

let reset () =
  Mutex.lock mu;
  Hashtbl.reset stacks;
  Hashtbl.reset phases;
  Atomic.set samples_a 0;
  Atomic.set dropped_a 0;
  Mutex.unlock mu

(* -- inspection ------------------------------------------------------ *)

let samples () = Atomic.get samples_a
let dropped () = Atomic.get dropped_a

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let phase_counts () =
  locked (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) phases []
      |> List.sort compare)

let diff_counts before after =
  List.filter_map
    (fun (k, n) ->
      let b = Option.value ~default:0 (List.assoc_opt k before) in
      if n - b > 0 then Some (k, n - b) else None)
    after

let sorted_stacks () =
  locked (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) stacks []
      |> List.sort compare)

let dump_folded () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, n) ->
      Buffer.add_string buf k;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '\n')
    (sorted_stacks ());
  Buffer.contents buf

let dump_json () =
  let stack_json (k, n) =
    let frames = Folded.split_frames k in
    Printf.sprintf "{\"stack\":[%s],\"count\":%d}"
      (String.concat ","
         (List.map (fun f -> "\"" ^ Json.escape f ^ "\"") frames))
      n
  in
  Printf.sprintf "{\"hz\":%d,\"samples\":%d,\"dropped\":%d,\"stacks\":[%s]}"
    (hz ()) (samples ()) (dropped ())
    (String.concat "," (List.map stack_json (sorted_stacks ())))

let stat_json () =
  let distinct = locked (fun () -> Hashtbl.length stacks) in
  Printf.sprintf
    "{\"running\":%b,\"hz\":%d,\"samples\":%d,\"dropped\":%d,\"stacks\":%d,\"phases\":{%s}}"
    (running ()) (hz ()) (samples ()) (dropped ()) distinct
    (String.concat ","
       (List.map
          (fun (k, n) -> Printf.sprintf "\"%s\":%d" (Json.escape k) n)
          (phase_counts ())))

let write_folded path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (dump_folded ()))
