(* CLOCK_MONOTONIC, in nanoseconds, as an unboxed OCaml int. *)

external now_ns : unit -> int = "xqb_obs_now_ns" [@@noalloc]

external wall_ns : unit -> int = "xqb_obs_wall_ns" [@@noalloc]
