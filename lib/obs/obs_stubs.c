/* Monotonic clock for the span tracer. Returned as a tagged OCaml
   int (nanoseconds since an arbitrary epoch): 62 bits of nanoseconds
   cover ~146 years of uptime, and an unboxed return keeps a span
   begin/end at zero allocations. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value xqb_obs_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}

/* Wall clock (CLOCK_REALTIME) for event-log records: monotonic
   timestamps order events, the wall stamp anchors them to real time
   for post-mortem reading. Same tagged-int representation. */
CAMLprim value xqb_obs_wall_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}
