(** Monotonic clock. Nanoseconds since an arbitrary (boot-time)
    epoch, as a tagged int — unboxed, allocation-free, safe against
    wall-clock steps. All span timestamps in {!Trace} use this
    scale. *)

val now_ns : unit -> int

(** Wall clock (CLOCK_REALTIME) in nanoseconds since the Unix epoch,
    as a tagged int. Event-log records carry both: {!now_ns} orders
    them, [wall_ns] anchors them to real time for post-mortem
    reading. Subject to wall-clock steps — never use for
    durations. *)
val wall_ns : unit -> int
