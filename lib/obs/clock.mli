(** Monotonic clock. Nanoseconds since an arbitrary (boot-time)
    epoch, as a tagged int — unboxed, allocation-free, safe against
    wall-clock steps. All span timestamps in {!Trace} use this
    scale. *)

val now_ns : unit -> int
