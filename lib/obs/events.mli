(** Structured, bounded service event log: typed records (severity,
    kind, monotonic + wall timestamps, key/value data) in a
    fixed-size ring, optionally mirrored line-by-line to an on-disk
    JSONL sink — Info and above serialized and flushed per event so
    the tail survives a SIGKILL and feeds the crash flight recorder;
    Debug (the per-commit hot path) queued unserialized and drained
    in order by {!pump}, at the next Info+ flush, or on {!close}.
    Thread-safe. Subscribers run outside the internal lock and may
    themselves log. *)

type severity = Debug | Info | Warn | Error | Critical

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val severity_rank : severity -> int

type field = S of string | I of int | F of float | B of bool

type event = {
  seq : int;
  ts_ns : int;  (** {!Clock.now_ns} — orders events within a run *)
  wall_s : float;  (** Unix epoch seconds — anchors them across runs *)
  level : severity;
  kind : string;  (** dotted category, e.g. ["wal.checkpoint"] *)
  data : (string * field) list;
}

type t

(** [cap] bounds the in-memory ring (default 512); [sink_path] opens
    (append, create) the JSONL mirror. *)
val create : ?cap:int -> ?sink_path:string -> unit -> t

(** A no-op log: {!log} is a single branch — the telemetry-off
    baseline of bench E22. *)
val disabled : unit -> t

val enabled : t -> bool
val log : t -> severity -> kind:string -> (string * field) list -> unit
val debug : t -> kind:string -> (string * field) list -> unit
val info : t -> kind:string -> (string * field) list -> unit
val warn : t -> kind:string -> (string * field) list -> unit
val error : t -> kind:string -> (string * field) list -> unit
val critical : t -> kind:string -> (string * field) list -> unit

(** Called for every subsequent event, outside the ring lock. *)
val subscribe : t -> (event -> unit) -> unit

(** Events ever logged (the ring retains the last [cap]). *)
val total : t -> int

(** Events logged at [level] or above, since creation. *)
val count_at_least : t -> severity -> int

(** Last [n] retained events at [level] (default all) or above,
    oldest first. *)
val tail : ?level:severity -> t -> int -> event list

val to_json : event -> string
val events_json : event list -> string

(** Serialize any queued Debug backlog to the sink (buffered, no
    flush). Called periodically by the owner's monitor thread so
    drains happen off the logging hot path. *)
val pump : t -> unit

(** Close the sink after draining the Debug backlog (idempotent); the
    ring keeps serving. *)
val close : t -> unit
