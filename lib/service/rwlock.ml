(* A readers–writer lock with writer preference: the purity gate of
   the service scheduler. Any number of Pure queries hold the read
   side concurrently; an Updating/Effecting query takes the write
   side exclusively. Writer preference (arriving writers block new
   readers) keeps update latency bounded under read-heavy load —
   the regime the paper's §2 web service lives in. *)

type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (* active readers *)
  mutable writer : bool;  (* active writer *)
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  (* wake a waiting writer first (it rechecks the guard); readers
     also wake but go back to sleep while writers are waiting *)
  Condition.signal t.can_write;
  Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
