(* The scheduler's admission gate, generalized from a binary
   readers-writer lock to a *footprint gate*: every job enters with a
   static effects footprint (Static.Footprint) and runs concurrently
   with every other job it is provably independent of — read/read
   always, read/write and write/write when their document regions
   don't overlap. The old purity gate falls out as the two extreme
   footprints: [read_all] (a Pure query: reads everything, writes
   nothing) and [top] (an opaque writer: conflicts with everyone),
   which is exactly what {!with_read} / {!with_write} request.

   Admission is FIFO-ticketed: a job may start iff it is independent
   of every *running* job and of every *earlier-ticketed waiter*. The
   second clause prevents barging (a stream of readers can't starve a
   writer — the old lock's writer preference, generalized) and keeps
   conflicting writers in submission order, which makes same-document
   update interleavings deterministic. Independent jobs overtake
   freely. Deadlock-free: a waiter only ever waits on running jobs
   and strictly earlier tickets, so the wait graph follows ticket
   order and is acyclic. *)

module FP = Core.Static.Footprint

type ticket = { tk : int; fp : FP.t }

type t = {
  mutex : Mutex.t;
  turn : Condition.t;
  mutable next : int;
  mutable running : ticket list;
  mutable waiting : ticket list;  (* ascending ticket order *)
  mutable peak : int;  (* max simultaneous holders, for metrics *)
  mutable writer_peak : int;  (* same, counting writing holders only *)
}

let create () =
  {
    mutex = Mutex.create ();
    turn = Condition.create ();
    next = 0;
    running = [];
    waiting = [];
    peak = 0;
    writer_peak = 0;
  }

let conflicts a b = not (FP.independent a b)

let acquire t fp =
  Mutex.lock t.mutex;
  let e = { tk = t.next; fp } in
  t.next <- t.next + 1;
  t.waiting <- t.waiting @ [ e ];
  let blocked () =
    List.exists (fun r -> conflicts r.fp fp) t.running
    || List.exists (fun w -> w.tk < e.tk && conflicts w.fp fp) t.waiting
  in
  while blocked () do
    Condition.wait t.turn t.mutex
  done;
  t.waiting <- List.filter (fun w -> w.tk <> e.tk) t.waiting;
  t.running <- e :: t.running;
  t.peak <- max t.peak (List.length t.running);
  let writers =
    List.length (List.filter (fun r -> not (FP.writes_nothing r.fp)) t.running)
  in
  t.writer_peak <- max t.writer_peak writers;
  Mutex.unlock t.mutex;
  e

let release t e =
  Mutex.lock t.mutex;
  t.running <- List.filter (fun r -> r.tk <> e.tk) t.running;
  (* waiters blocked on [e] (running or earlier-waiting) may now pass *)
  Condition.broadcast t.turn;
  Mutex.unlock t.mutex

let with_footprint t fp f =
  let e = acquire t fp in
  Fun.protect ~finally:(fun () -> release t e) f

(* The legacy binary gate, as footprints. *)
let with_read t f = with_footprint t FP.read_all f
let with_write t f = with_footprint t FP.top f

let running t =
  Mutex.lock t.mutex;
  let n = List.length t.running in
  Mutex.unlock t.mutex;
  n

let running_writers t =
  Mutex.lock t.mutex;
  let n =
    List.length (List.filter (fun r -> not (FP.writes_nothing r.fp)) t.running)
  in
  Mutex.unlock t.mutex;
  n

let peak t = t.peak
let writer_peak t = t.writer_peak
