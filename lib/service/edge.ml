(* The TCP edge. See edge.mli for the contract; the shape here:

   Fiber mode — one event-loop thread runs an accept fiber plus one
   fiber per connection. A connection fiber's life is a single loop:
   flush every completed head-of-line response, then wait on (socket
   readable unless suspended/closing) + (its waker) + (an idle or
   recheck deadline). Readable bytes land in a growable buffer; every
   complete line is parsed and dispatched immediately — admin
   requests answered inline, Query/EXPLAIN submitted to the domain
   scheduler with a completion callback that fills the response slot
   and wakes the fiber. Responses travel through a per-connection
   FIFO of slots, so pipelined replies leave in submission order no
   matter what order the scheduler finishes them in.

   Backpressure: the scheduler's own [max_queue] is the hard
   watermark (submission past it comes back [overloaded] through the
   service's taxonomy and is counted here); at 3/4 of it the
   connection stops reading — parsed work keeps running, the kernel
   socket buffer pushes back on the client — and resumes on a
   completion wake or a 50 ms recheck tick.

   Threads mode — the legacy thread-per-connection blocking loop over
   channels, kept for A/B benchmarking (bench E23). Both modes share
   [dispatch], the accept-resilience policy, TCP_NODELAY, the
   connection cap and the gauge counters. *)

module Fiber = Xqb_fiber.Fiber
module Events = Xqb_obs.Events
module Clock = Xqb_obs.Clock
module P = Protocol

type mode = Fiber | Threads

let mode_of_string = function
  | "fiber" -> Ok Fiber
  | "threads" -> Ok Threads
  | s -> Error (Printf.sprintf "unknown edge mode %S (fiber|threads)" s)

let mode_to_string = function Fiber -> "fiber" | Threads -> "threads"

type config = {
  port : int;
  backlog : int;
  max_conns : int;
  idle_timeout_ms : int;
  mode : mode;
}

let default_config =
  { port = 0; backlog = 64; max_conns = 0; idle_timeout_ms = 0; mode = Fiber }

(* A request line may carry a whole escaped document (LOAD), but a
   line that never ends is a memory attack, not a request. *)
let max_request_bytes = 16 * 1024 * 1024

(* Suspended connections re-check the queue depth this often even if
   no completion wake reaches them. *)
let resume_recheck_ns = 50_000_000

(* EMFILE/ENFILE backoff: long enough for some descriptor to close,
   short enough to matter at all. *)
let accept_backoff_ns = 50_000_000

type counters = {
  c_open : int Atomic.t;
  c_peak : int Atomic.t;
  c_accepted : int Atomic.t;
  c_conn_rejects : int Atomic.t;
  c_suspended : int Atomic.t;
  c_suspensions : int Atomic.t;
  c_overload_rejects : int Atomic.t;
  c_requests : int Atomic.t;
  c_batches : int Atomic.t;
}

let new_counters () =
  {
    c_open = Atomic.make 0;
    c_peak = Atomic.make 0;
    c_accepted = Atomic.make 0;
    c_conn_rejects = Atomic.make 0;
    c_suspended = Atomic.make 0;
    c_suspensions = Atomic.make 0;
    c_overload_rejects = Atomic.make 0;
    c_requests = Atomic.make 0;
    c_batches = Atomic.make 0;
  }

let bump_peak c =
  let now = Atomic.get c.c_open in
  let rec go () =
    let p = Atomic.get c.c_peak in
    if now > p && not (Atomic.compare_and_set c.c_peak p now) then go ()
  in
  go ()

type t = {
  svc : Service.t;
  cfg : config;
  sock : Unix.file_descr;
  eport : int;
  c : counters;
  loop : Fiber.t option;  (* fiber mode *)
  stop_requested : bool Atomic.t;
  (* threads mode: open connection fds, so stop can cut them loose *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  cmutex : Mutex.t;
  mutable thread : Thread.t option;
}

let port t = t.eport

let gauges t : Service.edge_gauges =
  {
    Service.eg_mode = mode_to_string t.cfg.mode;
    eg_open = Atomic.get t.c.c_open;
    eg_peak = Atomic.get t.c.c_peak;
    eg_accepted = Atomic.get t.c.c_accepted;
    eg_conn_rejects = Atomic.get t.c.c_conn_rejects;
    eg_suspended = Atomic.get t.c.c_suspended;
    eg_suspensions = Atomic.get t.c.c_suspensions;
    eg_overload_rejects = Atomic.get t.c.c_overload_rejects;
    eg_requests = Atomic.get t.c.c_requests;
    eg_batches = Atomic.get t.c.c_batches;
    eg_max_conns = t.cfg.max_conns;
  }

(* -- request dispatch (shared by both modes) ------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Answer a request either inline ([`Reply]) or as a scheduler future
   ([`Job]) the caller completes in its own style: the thread edge
   blocks in [Service.await], the fiber edge hangs an [on_complete]
   wake on it. [quit] is the per-session QUIT latch. *)
let dispatch svc ~quit (req : P.request) :
    [ `Reply of string | `Job of (string, Service_error.t) result Scheduler.future ]
    =
  try
    match req with
    | P.Open -> `Reply (P.ok (string_of_int (Service.open_session svc)))
    | P.Close sid ->
      Service.close_session svc sid;
      `Reply (P.ok "closed")
    | P.Load (sid, uri, path) ->
      Service.load_document svc sid ~uri (read_file path);
      `Reply (P.ok ("loaded " ^ uri))
    | P.Query (sid, q) -> `Job (Service.submit svc sid q)
    | P.Explain (sid, q) -> `Job (snd (Service.explain_job svc sid q))
    | P.Trace jid -> (
      match Service.trace_json svc jid with
      | Some (_, json) -> `Reply (P.ok json)
      | None ->
        `Reply
          (P.err
             (match jid with
             | Some jid -> Printf.sprintf "no trace for job %d" jid
             | None -> "no traced jobs (is tracing enabled?)")))
    | P.Cancel jid ->
      if Service.cancel svc jid then `Reply (P.ok "cancelled")
      else `Reply (P.err (Printf.sprintf "no in-flight job %d" jid))
    | P.Stats -> `Reply (P.ok (Service.stats_json svc))
    | P.Delta -> (
      match Service.delta_json svc with
      | Some json -> `Reply (P.ok json)
      | None -> `Reply (P.err "no write-side job has run yet"))
    | P.Slowlog -> `Reply (P.ok (Service.slowlog_json svc))
    | P.Metrics_prom -> `Reply (P.ok (Service.metrics_prometheus svc))
    | P.Health -> `Reply (P.ok (Service.health_json svc))
    | P.Events (n, level) ->
      let level =
        Option.map
          (fun l ->
            match Events.severity_of_string l with
            | Some s -> s
            | None -> assert false (* parse validated it *))
          level
      in
      `Reply (P.ok (Service.events_json ?level svc n))
    | P.Journal_stat -> `Reply (P.ok (Service.journal_stat_json svc))
    | P.Replica_stat -> `Reply (P.ok (Service.replica_stat_json svc))
    | P.Checkpoint -> (
      match Service.checkpoint_now svc with
      | Ok lsn -> `Reply (P.ok (string_of_int lsn))
      | Error e -> `Reply (P.err e))
    | P.Ship (from_lsn, max, replica_id) -> (
      (* blobs travel base64 so frames fit the one-line protocol *)
      match Service.ship_frames ?replica_id svc ~from_lsn ~max with
      | Ok (last, frames) ->
        `Reply (P.ok (Printf.sprintf "%d %s" last (Xqb_wal.B64.encode frames)))
      | Error e -> `Reply (P.err e))
    | P.Snapshot -> (
      match Service.snapshot_blob svc with
      | Ok (_, blob) -> `Reply (P.ok (Xqb_wal.B64.encode blob))
      | Error e -> `Reply (P.err e))
    | P.Profile cmd -> `Reply (P.ok (Service.profile_command svc cmd))
    | P.Quit ->
      quit ();
      `Reply (P.ok "bye")
  with
  | Failure m | Sys_error m -> `Reply (P.err m)
  | e -> `Reply (P.err (Printexc.to_string e))

let render_result = function
  | Ok s -> P.ok s
  | Error (e : Service_error.t) -> P.err_of e

let is_overload_reply line =
  let pre = "ERR [overloaded]" in
  String.length line >= String.length pre
  && String.sub line 0 (String.length pre) = pre

(* -- the blocking session loop (threads mode + stdin) --------------- *)

let session_loop_counted ?counters svc ic oc =
  let stopped = ref false in
  let quit () = stopped := true in
  let rec loop () =
    match input_line ic with
    | line ->
      (match counters with
      | Some c -> Atomic.incr c.c_requests
      | None -> ());
      let reply =
        match P.parse line with
        | Error e -> P.err e
        | Ok req -> (
          match dispatch svc ~quit req with
          | `Reply s -> s
          | `Job fut -> render_result (Service.await fut))
      in
      (match counters with
      | Some c -> if is_overload_reply reply then Atomic.incr c.c_overload_rejects
      | None -> ());
      output_string oc (reply ^ "\n");
      flush oc;
      if not !stopped then loop ()
    | exception End_of_file -> ()
  in
  loop ()

let session_loop svc ic oc = session_loop_counted svc ic oc

(* -- accept resilience (shared policy) ------------------------------

   A transient accept(2) failure must never kill the listener:
   ECONNABORTED (peer gone before we got it) and EINTR retry
   immediately; EMFILE/ENFILE (descriptor exhaustion) log an event
   and back off so in-flight connections can close. Anything else is
   fatal for the edge (EBADF after [stop] in particular). *)

type accept_verdict = Retry | Backoff | Fatal

let classify_accept_error t (e : Unix.error) =
  match e with
  | Unix.ECONNABORTED | Unix.EINTR -> Retry
  | Unix.EMFILE | Unix.ENFILE ->
    Events.warn (Service.events t.svc) ~kind:"edge.accept-backoff"
      [
        ("error", Events.S (Unix.error_message e));
        ("open", Events.I (Atomic.get t.c.c_open));
      ];
    Backoff
  | _ -> Fatal

(* Refuse a connection over --max-conns with one best-effort line.
   The socket is fresh out of accept and almost certainly writable;
   if it isn't, the close alone tells the client enough. *)
let refuse_conn t fd =
  Atomic.incr t.c.c_conn_rejects;
  let msg = P.err "[overloaded] connection limit reached" ^ "\n" in
  (try Unix.set_nonblock fd with _ -> ());
  (try ignore (Unix.write_substring fd msg 0 (String.length msg))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* -- the fiber edge ------------------------------------------------- *)

(* One response slot per parsed request, queued FIFO; the cell is
   filled (possibly from a worker domain) when the reply line is
   ready. *)
type resp = string option Atomic.t

type conn = {
  fd : Unix.file_descr;
  wkr : Fiber.waker;
  pending : resp Queue.t;
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  mutable scanned : int;  (* inbuf.[0 .. scanned) holds no '\n' *)
  mutable wbuf : string;  (* partially written output *)
  mutable woff : int;
  mutable closing : bool;  (* EOF / QUIT / fatal: stop reading *)
  mutable suspended : bool;  (* read-side backpressure *)
  mutable last_activity : int;  (* Clock ns *)
}

(* The soft watermark: 3/4 of the scheduler's admission bound. *)
let soft_watermark sched =
  match Scheduler.max_queue sched with
  | None -> max_int
  | Some m -> Stdlib.max 1 (m * 3 / 4)

let suspend_reads t conn =
  if not conn.suspended then begin
    conn.suspended <- true;
    Atomic.incr t.c.c_suspended;
    Atomic.incr t.c.c_suspensions
  end

let maybe_resume_reads t conn =
  if
    conn.suspended
    && Scheduler.queue_depth (Service.scheduler t.svc)
       < soft_watermark (Service.scheduler t.svc)
  then begin
    conn.suspended <- false;
    Atomic.decr t.c.c_suspended
  end

(* Move every completed head-of-line response into the write buffer
   and push it out; on a full socket buffer, park on writability (and
   the idle deadline, so a stuck client can't hold the fd forever).
   Raises [Exit] to drop the connection. *)
let flush_conn t conn =
  let rec write_out () =
    let len = String.length conn.wbuf - conn.woff in
    if len > 0 then begin
      match Unix.write_substring conn.fd conn.wbuf conn.woff len with
      | n ->
        conn.woff <- conn.woff + n;
        conn.last_activity <- Clock.now_ns ();
        write_out ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        let deadline_ns =
          if t.cfg.idle_timeout_ms > 0 then
            Some (Clock.now_ns () + (t.cfg.idle_timeout_ms * 1_000_000))
          else None
        in
        match Fiber.wait ~writable:conn.fd ?deadline_ns () with
        | `Timeout -> raise Exit
        | _ -> write_out ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_out ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Exit
    end
  in
  let rec pump () =
    write_out ();
    (* batch every completed head into one write: a pipelined batch
       of small replies leaves in a single syscall *)
    let buf = Buffer.create 256 in
    let rec gather () =
      match Queue.peek_opt conn.pending with
      | Some cell -> (
        match Atomic.get cell with
        | Some line ->
          ignore (Queue.pop conn.pending);
          if is_overload_reply line then Atomic.incr t.c.c_overload_rejects;
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          gather ()
        | None -> ())
      | None -> ()
    in
    gather ();
    if Buffer.length buf > 0 then begin
      conn.wbuf <- Buffer.contents buf;
      conn.woff <- 0;
      pump ()
    end
  in
  pump ()

(* Parse every complete line in the input buffer and dispatch it.
   Returns how many scheduler jobs the batch submitted. *)
let parse_and_dispatch t conn =
  let jobs = ref 0 in
  let consumed = ref 0 in
  let quit () = conn.closing <- true in
  let rec scan () =
    if (not conn.closing) && conn.scanned < conn.in_len then begin
      match Bytes.index_from_opt conn.inbuf conn.scanned '\n' with
      | Some nl when nl < conn.in_len ->
        let line = Bytes.sub_string conn.inbuf !consumed (nl - !consumed) in
        consumed := nl + 1;
        conn.scanned <- nl + 1;
        Atomic.incr t.c.c_requests;
        let cell : resp =
          match P.parse line with
          | Error e -> Atomic.make (Some (P.err e))
          | Ok req -> (
            match dispatch t.svc ~quit req with
            | `Reply s -> Atomic.make (Some s)
            | `Job fut ->
              incr jobs;
              let cell = Atomic.make None in
              Scheduler.on_complete fut (fun result ->
                  let folded =
                    match result with
                    | Ok r -> r
                    | Error exn -> Error (Service_error.classify exn)
                  in
                  Atomic.set cell (Some (render_result folded));
                  Fiber.wake conn.wkr);
              cell)
        in
        Queue.push cell conn.pending;
        scan ()
      | _ -> conn.scanned <- conn.in_len
    end
  in
  scan ();
  if !consumed > 0 then begin
    (* drop the consumed prefix; keep the partial tail *)
    let rest = conn.in_len - !consumed in
    Bytes.blit conn.inbuf !consumed conn.inbuf 0 rest;
    conn.in_len <- rest;
    conn.scanned <- rest
  end;
  !jobs

let grow_inbuf conn =
  let cap = Bytes.length conn.inbuf in
  if conn.in_len = cap then
    if cap >= max_request_bytes then begin
      Queue.push
        (Atomic.make (Some (P.err "request line too long")))
        conn.pending;
      conn.closing <- true
    end
    else begin
      let nb = Bytes.create (Stdlib.min (2 * cap) max_request_bytes) in
      Bytes.blit conn.inbuf 0 nb 0 conn.in_len;
      conn.inbuf <- nb
    end

(* Read whatever the socket holds right now; [false] on EOF. *)
let read_some conn =
  let rec go () =
    grow_inbuf conn;
    if conn.closing then true
    else begin
      let cap = Bytes.length conn.inbuf in
      match Unix.read conn.fd conn.inbuf conn.in_len (cap - conn.in_len) with
      | 0 -> false
      | n ->
        conn.in_len <- conn.in_len + n;
        conn.last_activity <- Clock.now_ns ();
        if conn.in_len = cap then go () else true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> false
    end
  in
  go ()

let conn_fiber t fd () =
  let conn =
    {
      fd;
      wkr = Fiber.waker (Option.get t.loop);
      pending = Queue.create ();
      inbuf = Bytes.create 4096;
      in_len = 0;
      scanned = 0;
      wbuf = "";
      woff = 0;
      closing = false;
      suspended = false;
      last_activity = Clock.now_ns ();
    }
  in
  let cleanup () =
    if conn.suspended then Atomic.decr t.c.c_suspended;
    Atomic.decr t.c.c_open;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  try
    let sched = Service.scheduler t.svc in
    let rec loop () =
      flush_conn t conn;
      if conn.closing && Queue.is_empty conn.pending then ()
      else begin
        maybe_resume_reads t conn;
        let can_read = (not conn.closing) && not conn.suspended in
        let deadline_ns =
          if conn.suspended then Some (Clock.now_ns () + resume_recheck_ns)
          else if
            t.cfg.idle_timeout_ms > 0
            && can_read
            && Queue.is_empty conn.pending
          then Some (conn.last_activity + (t.cfg.idle_timeout_ms * 1_000_000))
          else None
        in
        let readable = if can_read then Some fd else None in
        (match Fiber.wait ?readable ~waker:conn.wkr ?deadline_ns () with
        | `Woken | `Writable -> ()
        | `Readable ->
          if not (read_some conn) then conn.closing <- true;
          let jobs = parse_and_dispatch t conn in
          if jobs > 0 then begin
            Atomic.incr t.c.c_batches;
            if Scheduler.queue_depth sched >= soft_watermark sched then
              suspend_reads t conn
          end
        | `Timeout ->
          if conn.suspended then ()
          else if
            Queue.is_empty conn.pending
            && Clock.now_ns () - conn.last_activity
               >= t.cfg.idle_timeout_ms * 1_000_000
          then raise Exit);
        loop ()
      end
    in
    loop ()
  with
  | Exit -> ()
  | Unix.Unix_error _ -> ()

let accept_fiber t () =
  let loop_t = Option.get t.loop in
  Fun.protect
    ~finally:(fun () -> try Unix.close t.sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec loop () =
    match Unix.accept ~cloexec:true t.sock with
    | fd, _ ->
      Atomic.incr t.c.c_accepted;
      if t.cfg.max_conns > 0 && Atomic.get t.c.c_open >= t.cfg.max_conns then
        refuse_conn t fd
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Atomic.incr t.c.c_open;
        bump_peak t.c;
        Fiber.spawn loop_t (conn_fiber t fd)
      end;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Fiber.wait ~readable:t.sock ());
      loop ()
    | exception Unix.Unix_error (e, _, _) -> (
      match classify_accept_error t e with
      | Retry -> loop ()
      | Backoff ->
        Fiber.sleep_ns accept_backoff_ns;
        loop ()
      | Fatal ->
        if not (Atomic.get t.stop_requested) then
          Events.error (Service.events t.svc) ~kind:"edge.accept-fatal"
            [ ("error", Events.S (Unix.error_message e)) ])
  in
  loop ()

(* -- the thread edge ------------------------------------------------ *)

let track_conn t fd =
  Mutex.lock t.cmutex;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.cmutex

(* Exactly-once close under the tracking mutex: whoever removes the
   fd from the table (the finishing session thread, or [stop]'s
   teardown sweep) owns the close — never both, so a reused
   descriptor can't be closed out from under someone else. *)
let untrack_and_close t fd =
  Mutex.lock t.cmutex;
  let mine = Hashtbl.mem t.conns fd in
  if mine then Hashtbl.remove t.conns fd;
  Mutex.unlock t.cmutex;
  if mine then try Unix.close fd with Unix.Unix_error _ -> ()

let thread_conn t fd () =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try session_loop_counted ~counters:t.c t.svc ic oc with _ -> ());
  untrack_and_close t fd;
  Atomic.decr t.c.c_open

let thread_accept_loop t () =
  let rec loop () =
    match Unix.accept ~cloexec:true t.sock with
    | fd, _ ->
      Atomic.incr t.c.c_accepted;
      if t.cfg.max_conns > 0 && Atomic.get t.c.c_open >= t.cfg.max_conns then
        refuse_conn t fd
      else begin
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Atomic.incr t.c.c_open;
        bump_peak t.c;
        track_conn t fd;
        ignore (Thread.create (thread_conn t fd) ())
      end;
      loop ()
    | exception Unix.Unix_error (e, _, _) -> (
      match classify_accept_error t e with
      | Retry -> loop ()
      | Backoff ->
        Thread.delay (float_of_int accept_backoff_ns /. 1e9);
        loop ()
      | Fatal ->
        (* the loop owns the listener's close — [stop] only shuts it
           down, which is what wakes a blocked accept(2) *)
        (try Unix.close t.sock with Unix.Unix_error _ -> ());
        if not (Atomic.get t.stop_requested) then
          Events.error (Service.events t.svc) ~kind:"edge.accept-fatal"
            [ ("error", Events.S (Unix.error_message e)) ])
  in
  loop ()

(* -- lifecycle ------------------------------------------------------ *)

let start svc cfg =
  if cfg.backlog < 1 then invalid_arg "Edge.start: backlog < 1";
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" cfg.port
          (Unix.error_message e)));
  Unix.listen sock cfg.backlog;
  let eport =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let loop =
    match cfg.mode with
    | Fiber ->
      Unix.set_nonblock sock;
      Some (Fiber.create ~on_error:(fun _ -> ()) ())
    | Threads -> None
  in
  let t =
    {
      svc;
      cfg;
      sock;
      eport;
      c = new_counters ();
      loop;
      stop_requested = Atomic.make false;
      conns = Hashtbl.create 64;
      cmutex = Mutex.create ();
      thread = None;
    }
  in
  Service.set_edge_source svc (Some (fun () -> gauges t));
  Events.info (Service.events svc) ~kind:"edge.listen"
    [
      ("port", Events.I eport);
      ("mode", Events.S (mode_to_string cfg.mode));
      ("backlog", Events.I cfg.backlog);
      ("max_conns", Events.I cfg.max_conns);
    ];
  let thread =
    match cfg.mode with
    | Fiber ->
      Thread.create
        (fun () -> Fiber.run (Option.get t.loop) (accept_fiber t))
        ()
    | Threads -> Thread.create (thread_accept_loop t) ()
  in
  t.thread <- Some thread;
  t

let join t = match t.thread with Some th -> Thread.join th | None -> ()

let stop t =
  if not (Atomic.exchange t.stop_requested true) then begin
    (match t.cfg.mode with
    | Fiber ->
      (* cancelling the fibers closes every fd, the listener included *)
      Option.iter Fiber.stop t.loop
    | Threads ->
      (* shutdown(2), not close(2): closing an fd another thread is
         blocked on in accept/read does NOT wake it on Linux, so the
         join below would hang. Shutdown forces those syscalls to
         return (EINVAL for accept, EOF for reads); each thread then
         closes the fd it owns on its way out. *)
      (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      let fds =
        Mutex.lock t.cmutex;
        let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
        Mutex.unlock t.cmutex;
        fds
      in
      List.iter
        (fun fd ->
          (* under the mutex so we never touch a descriptor whose
             session thread already untracked and closed it *)
          Mutex.lock t.cmutex;
          if Hashtbl.mem t.conns fd then (
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ());
          Mutex.unlock t.cmutex)
        fds);
    join t
  end
