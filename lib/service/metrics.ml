(* Service observability: per-query latency, scheduler queue depth,
   purity-class counts and applied-∆ counts (fed by each session
   engine's [Context.on_apply] hook), dumped as JSON. All counters
   live behind one mutex — recording is a few stores, and queries are
   milliseconds.

   Latencies go into fixed-footprint log-bucketed histograms
   ([Xqb_obs.Hist]) rather than a growing reservoir: a long-lived
   server no longer accumulates one float per query forever, and
   percentiles are exact for the first 512 samples, ~19%-bucketed
   after. The same histogram type backs the per-phase breakdowns fed
   from each traced job's span totals. *)

module Hist = Xqb_obs.Hist
module Window = Xqb_obs.Window
module Prom = Xqb_obs.Prom

(* The three health windows: 1s (10×100ms) answers "is it on fire",
   10s and 60s (1s slots) smooth burn-rate alerting. *)
let window_specs = [ ("1s", 100, 10); ("10s", 1000, 10); ("60s", 1000, 60) ]

type t = {
  mutex : Mutex.t;
  mutable queries : int;
  mutable parallel : int;  (* executed on the read side *)
  mutable exclusive : int;  (* executed on the write side *)
  mutable errors : int;
  (* failed queries by taxonomy kind (Service_error) *)
  mutable err_timeout : int;
  mutable err_cancelled : int;
  mutable err_overloaded : int;
  mutable err_conflict : int;
  mutable err_dynamic : int;
  mutable pure : int;
  mutable updating : int;
  mutable effecting : int;
  (* per-query wall time, ns *)
  lat : Hist.t;
  (* per-pipeline-phase wall time, ns, keyed by span name; fed from
     traced jobs' [Trace.phase_totals] *)
  phases : (string, Hist.t) Hashtbl.t;
  mutable phase_order : string list;  (* first-recorded order, reversed *)
  (* scheduler queue depth sampled at each submit *)
  mutable depth_sum : int;
  mutable depth_samples : int;
  mutable depth_max : int;
  (* ∆ accounting from Context.on_apply *)
  mutable deltas_applied : int;  (* snap applications *)
  mutable update_requests : int;  (* total requests across all ∆s *)
  (* in-flight gauges: how many jobs hold each side of the purity
     gate right now / at peak. max_inflight_par > 1 is direct
     evidence the read side admits concurrent Pure queries;
     max_inflight_excl stays 1 by construction of the write lock. *)
  mutable inflight_par : int;
  mutable max_inflight_par : int;
  mutable inflight_excl : int;
  mutable max_inflight_excl : int;
  (* rolling 1s/10s/60s views of the same query stream ([] when
     telemetry is off — bench E22's baseline). Windows carry their
     own locks; recording happens outside [mutex]. *)
  windows : (string * Window.t) list;
  slo_p99_ms : float;  (* latency SLO target: p99 under this *)
  slo_err_pct : float;  (* availability SLO: error % under this *)
}

let create ?(windows = true) ?(slo_p99_ms = 250.) ?(slo_err_pct = 1.0) () =
  {
    mutex = Mutex.create ();
    queries = 0;
    parallel = 0;
    exclusive = 0;
    errors = 0;
    err_timeout = 0;
    err_cancelled = 0;
    err_overloaded = 0;
    err_conflict = 0;
    err_dynamic = 0;
    pure = 0;
    updating = 0;
    effecting = 0;
    lat = Hist.create ();
    phases = Hashtbl.create 16;
    phase_order = [];
    depth_sum = 0;
    depth_samples = 0;
    depth_max = 0;
    deltas_applied = 0;
    update_requests = 0;
    inflight_par = 0;
    max_inflight_par = 0;
    inflight_excl = 0;
    max_inflight_excl = 0;
    windows =
      (if windows then
         List.map
           (fun (name, slot_ms, slots) -> (name, Window.create ~slot_ms ~slots ()))
           window_specs
       else []);
    slo_p99_ms;
    slo_err_pct;
  }

let slo t = (t.slo_p99_ms, t.slo_err_pct)

let record_windows t ~ok latency_ns =
  match t.windows with
  | [] -> ()
  | ws ->
      let slow = latency_ns > t.slo_p99_ms *. 1e6 in
      let now_ns = Xqb_obs.Clock.now_ns () in
      List.iter
        (fun (_, w) -> Window.record ~now_ns w ~ok ~slow (int_of_float latency_ns))
        ws

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_query t ~purity ~parallel ~ok ~latency_ns =
  locked t (fun () ->
      t.queries <- t.queries + 1;
      if parallel then t.parallel <- t.parallel + 1
      else t.exclusive <- t.exclusive + 1;
      if not ok then t.errors <- t.errors + 1;
      (match (purity : Core.Static.purity) with
      | Core.Static.Pure -> t.pure <- t.pure + 1
      | Core.Static.Updating -> t.updating <- t.updating + 1
      | Core.Static.Effecting -> t.effecting <- t.effecting + 1);
      Hist.record t.lat latency_ns);
  record_windows t ~ok latency_ns

(* One pipeline-phase observation (span name, summed ns within one
   job). Histograms are created on first sight of a phase name. *)
let record_phase t name ns =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.phases name with
        | Some h -> h
        | None ->
          let h = Hist.create () in
          Hashtbl.add t.phases name h;
          t.phase_order <- name :: t.phase_order;
          h
      in
      Hist.record h ns)

(* Fold a traced job's span totals ([Trace.phase_totals]) in. *)
let record_phase_totals t totals =
  List.iter (fun (name, ns) -> record_phase t name (float_of_int ns)) totals

(* A submission that failed before reaching the scheduler (parse or
   static error): counts as a query and an error, no purity class. *)
let record_compile_error t =
  locked t (fun () ->
      t.queries <- t.queries + 1;
      t.errors <- t.errors + 1);
  record_windows t ~ok:false 0.

(* Count a failed query against its taxonomy kind. The [errors]
   total is maintained by [record_query]/[record_compile_error]; this
   only does the per-kind breakdown. *)
let record_error t (kind : Service_error.kind) =
  locked t (fun () ->
      match kind with
      | Service_error.Timeout -> t.err_timeout <- t.err_timeout + 1
      | Service_error.Cancelled -> t.err_cancelled <- t.err_cancelled + 1
      | Service_error.Overloaded -> t.err_overloaded <- t.err_overloaded + 1
      | Service_error.Conflict -> t.err_conflict <- t.err_conflict + 1
      | Service_error.Dynamic -> t.err_dynamic <- t.err_dynamic + 1)

let errors_by_kind t =
  locked t (fun () ->
      [
        (Service_error.Timeout, t.err_timeout);
        (Service_error.Cancelled, t.err_cancelled);
        (Service_error.Overloaded, t.err_overloaded);
        (Service_error.Conflict, t.err_conflict);
        (Service_error.Dynamic, t.err_dynamic);
      ])

let record_queue_depth t d =
  locked t (fun () ->
      t.depth_sum <- t.depth_sum + d;
      t.depth_samples <- t.depth_samples + 1;
      if d > t.depth_max then t.depth_max <- d)

(* Called by the service around each job's execution, with the
   corresponding side of the scheduler's lock already held. *)
let job_begin t ~parallel =
  locked t (fun () ->
      if parallel then begin
        t.inflight_par <- t.inflight_par + 1;
        if t.inflight_par > t.max_inflight_par then
          t.max_inflight_par <- t.inflight_par
      end
      else begin
        t.inflight_excl <- t.inflight_excl + 1;
        if t.inflight_excl > t.max_inflight_excl then
          t.max_inflight_excl <- t.inflight_excl
      end)

let job_end t ~parallel =
  locked t (fun () ->
      if parallel then t.inflight_par <- t.inflight_par - 1
      else t.inflight_excl <- t.inflight_excl - 1)

let counts t = locked t (fun () -> (t.queries, t.parallel, t.exclusive, t.errors))

let max_inflight t =
  locked t (fun () -> (t.max_inflight_par, t.max_inflight_excl))

(* Wired into each session engine's [Context.on_apply]. *)
let record_delta t delta =
  locked t (fun () ->
      t.deltas_applied <- t.deltas_applied + 1;
      t.update_requests <- t.update_requests + List.length delta)

(* -- JSON dump ------------------------------------------------------

   Percentiles come from [Hist], whose nearest-rank definition uses
   ceil(p*n) — the previous reservoir truncated p*n, which
   under-reports high percentiles (p95 of 10 samples picked the 9th,
   not the 10th). *)

let json_escape = Xqb_obs.Json.escape

(* The full dump. [cache] carries the plan cache's counters; [docs]
   the catalog listing; [extra] pre-rendered key/JSON pairs appended
   verbatim (the service adds its in-flight job listing). *)
let to_json ?(cache : Plan_cache.stats option)
    ?(docs : (string * int * int) list = []) ?(extra : (string * string) list = [])
    t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      let obj fields =
        "{" ^ String.concat "," fields ^ "}"
      in
      let fint k v = Printf.sprintf "\"%s\":%d" k v in
      let ffloat k v = Printf.sprintf "\"%s\":%.1f" k v in
      Buffer.add_string buf "{";
      Buffer.add_string buf
        (String.concat ","
           ([
             Printf.sprintf "\"queries\":%s"
               (obj
                  [
                    fint "total" t.queries;
                    fint "parallel" t.parallel;
                    fint "exclusive" t.exclusive;
                    fint "errors" t.errors;
                    fint "pure" t.pure;
                    fint "updating" t.updating;
                    fint "effecting" t.effecting;
                  ]);
             Printf.sprintf "\"errors_by_kind\":%s"
               (obj
                  [
                    fint "timeout" t.err_timeout;
                    fint "cancelled" t.err_cancelled;
                    fint "overloaded" t.err_overloaded;
                    fint "conflict" t.err_conflict;
                    fint "dynamic" t.err_dynamic;
                  ]);
             Printf.sprintf "\"latency_ns\":{%s}" (Hist.to_json_fields t.lat);
             Printf.sprintf "\"phases_ns\":%s"
               (obj
                  (List.rev_map
                     (fun name ->
                       Printf.sprintf "\"%s\":{%s}" (json_escape name)
                         (Hist.to_json_fields (Hashtbl.find t.phases name)))
                     t.phase_order));
             Printf.sprintf "\"queue_depth\":%s"
               (obj
                  [
                    ffloat "mean"
                      (if t.depth_samples = 0 then 0.
                       else float_of_int t.depth_sum /. float_of_int t.depth_samples);
                    fint "max" t.depth_max;
                  ]);
             Printf.sprintf "\"concurrency\":%s"
               (obj
                  [
                    fint "max_parallel_inflight" t.max_inflight_par;
                    fint "max_exclusive_inflight" t.max_inflight_excl;
                  ]);
             Printf.sprintf "\"deltas\":%s"
               (obj
                  [
                    fint "applied" t.deltas_applied;
                    fint "update_requests" t.update_requests;
                  ]);
             (match cache with
             | None -> "\"plan_cache\":null"
             | Some c ->
               Printf.sprintf "\"plan_cache\":%s"
                 (obj
                    [
                      fint "hits" c.Plan_cache.hits;
                      fint "misses" c.Plan_cache.misses;
                      fint "evictions" c.Plan_cache.evictions;
                      fint "size" c.Plan_cache.size;
                      fint "capacity" c.Plan_cache.capacity;
                    ]));
             Printf.sprintf "\"documents\":[%s]"
               (String.concat ","
                  (List.map
                     (fun (uri, rc, bytes) ->
                       obj
                         [
                           Printf.sprintf "\"uri\":\"%s\"" (json_escape uri);
                           fint "refcount" rc;
                           fint "bytes" bytes;
                         ])
                     docs));
           ]
           @ List.map
               (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v)
               extra));
      Buffer.add_string buf "}";
      Buffer.contents buf)

(* -- Prometheus text exposition -------------------------------------

   The same counters as [to_json], rendered through the shared
   [Xqb_obs.Prom] emitter (format 0.0.4): counters as _total with
   # HELP/# TYPE lines, latency and per-phase distributions as
   summaries with quantile labels, and the rolling windows as
   gauges. The service composes this page with the WAL, gate,
   trace-ring and replica contributions on one emitter, so family
   headers dedupe across layers. *)

let prom_summary p ~help ?labels name (h : Hist.t) =
  Prom.summary p ~help ?labels name
    ~quantiles:(List.map (fun q -> (q, Hist.percentile h q)) [ 0.5; 0.9; 0.99 ])
    ~sum:(Hist.sum h) ~count:(Hist.count h)

let windows_to_prom t p =
  List.iter
    (fun (name, w) ->
      let s = Window.snapshot w in
      let labels = [ ("window", name) ] in
      Prom.gauge p ~labels "xqbang_window_rate"
        ~help:"Requests per second over the rolling window." s.Window.rate;
      Prom.gauge p ~labels "xqbang_window_p50_ns"
        ~help:"Rolling-window median latency (bucket estimate, ns)." s.Window.p50_ns;
      Prom.gauge p ~labels "xqbang_window_p99_ns"
        ~help:"Rolling-window p99 latency (bucket estimate, ns)." s.Window.p99_ns;
      Prom.gauge p ~labels "xqbang_window_error_ratio"
        ~help:"Failed fraction of requests in the rolling window." s.Window.err_frac;
      Prom.gauge p ~labels "xqbang_window_slow_ratio"
        ~help:"Fraction of rolling-window requests over the p99 SLO target."
        s.Window.slow_frac;
      Prom.gauge p
        ~labels:(labels @ [ ("slo", "availability") ])
        "xqbang_slo_burn_rate"
        ~help:
          "Error-budget consumption rate: 1 = exactly on SLO target, >1 = burning ahead."
        (Window.burn ~frac:s.Window.err_frac ~budget_frac:(t.slo_err_pct /. 100.));
      Prom.gauge p
        ~labels:(labels @ [ ("slo", "latency") ])
        "xqbang_slo_burn_rate"
        ~help:
          "Error-budget consumption rate: 1 = exactly on SLO target, >1 = burning ahead."
        (Window.burn ~frac:s.Window.slow_frac ~budget_frac:0.01))
    t.windows

let to_prom ?(cache : Plan_cache.stats option) t p =
  locked t (fun () ->
      let counter name ~help ?labels v = Prom.counter p ~help ?labels name v in
      counter "xqbang_queries_total" ~help:"Queries submitted since boot." t.queries;
      let by_side = "Queries by scheduling side." in
      counter "xqbang_queries_by_side_total" ~help:by_side
        ~labels:[ ("side", "parallel") ] t.parallel;
      counter "xqbang_queries_by_side_total" ~help:by_side
        ~labels:[ ("side", "exclusive") ] t.exclusive;
      let by_purity = "Queries by static purity class." in
      counter "xqbang_queries_by_purity_total" ~help:by_purity
        ~labels:[ ("purity", "pure") ] t.pure;
      counter "xqbang_queries_by_purity_total" ~help:by_purity
        ~labels:[ ("purity", "updating") ] t.updating;
      counter "xqbang_queries_by_purity_total" ~help:by_purity
        ~labels:[ ("purity", "effecting") ] t.effecting;
      counter "xqbang_query_errors_total" ~help:"Failed queries since boot." t.errors;
      List.iter
        (fun (kind, n) ->
          counter "xqbang_query_errors_by_kind_total"
            ~help:"Failed queries by taxonomy kind."
            ~labels:[ ("kind", Service_error.kind_to_string kind) ]
            n)
        [
          (Service_error.Timeout, t.err_timeout);
          (Service_error.Cancelled, t.err_cancelled);
          (Service_error.Overloaded, t.err_overloaded);
          (Service_error.Conflict, t.err_conflict);
          (Service_error.Dynamic, t.err_dynamic);
        ];
      counter "xqbang_deltas_applied_total" ~help:"Snap (delta) applications."
        t.deltas_applied;
      counter "xqbang_update_requests_total"
        ~help:"Update requests across all applied deltas." t.update_requests;
      Prom.gauge_i p "xqbang_queue_depth_max"
        ~help:"Peak scheduler queue depth sampled at submits." t.depth_max;
      let peak = "Peak concurrent jobs per scheduling side." in
      Prom.gauge_i p "xqbang_inflight_peak" ~help:peak
        ~labels:[ ("side", "parallel") ] t.max_inflight_par;
      Prom.gauge_i p "xqbang_inflight_peak" ~help:peak
        ~labels:[ ("side", "exclusive") ] t.max_inflight_excl;
      (match cache with
      | None -> ()
      | Some c ->
        let cache_help = "Plan-cache events." in
        counter "xqbang_plan_cache_total" ~help:cache_help
          ~labels:[ ("event", "hit") ] c.Plan_cache.hits;
        counter "xqbang_plan_cache_total" ~help:cache_help
          ~labels:[ ("event", "miss") ] c.Plan_cache.misses;
        counter "xqbang_plan_cache_total" ~help:cache_help
          ~labels:[ ("event", "eviction") ]
          c.Plan_cache.evictions;
        Prom.gauge_i p "xqbang_plan_cache_size" ~help:"Plans resident in the cache."
          c.Plan_cache.size);
      prom_summary p "xqbang_query_latency_ns"
        ~help:"Per-query wall time (ns)." t.lat;
      (* declared even with no phases yet (tracing off, or before the
         first job) so the family is always present on the page *)
      Prom.declare p ~name:"xqbang_phase_ns" ~typ:"summary"
        ~help:"Per-pipeline-phase wall time (ns).";
      List.iter
        (fun name ->
          prom_summary p "xqbang_phase_ns" ~help:"Per-pipeline-phase wall time (ns)."
            ~labels:[ ("phase", name) ]
            (Hashtbl.find t.phases name))
        (List.rev t.phase_order));
  (* windows carry their own locks; snapshot outside [t.mutex] *)
  windows_to_prom t p

(* -- Rolling-window JSON (the STATS "windows" member) -------------- *)

let windows_json t =
  let ws =
    List.map
      (fun (name, w) ->
        Printf.sprintf "\"%s\":%s" name (Window.snap_json (Window.snapshot w)))
      t.windows
  in
  let slo =
    Printf.sprintf "\"slo\":{\"p99_ms\":%g,\"err_pct\":%g}" t.slo_p99_ms t.slo_err_pct
  in
  "{" ^ String.concat "," (ws @ [ slo ]) ^ "}"

let window_snaps t = List.map (fun (name, w) -> (name, Window.snapshot w)) t.windows
