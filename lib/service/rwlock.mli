(** The scheduler's admission gate: a FIFO-ticketed *footprint gate*.
    Jobs enter with a static effects footprint
    ({!Core.Static.Footprint}) and run concurrently with every job
    they are provably independent of; conflicting jobs are admitted in
    submission order (no barging — the old writer preference,
    generalized). The legacy binary readers-writer interface is the
    pair of extreme footprints: {!with_read} = reads-everything, and
    {!with_write} = conflicts-with-everything. *)

type t

type ticket

val create : unit -> t

(** Block until the footprint is independent of every running job and
    every earlier conflicting waiter, then hold it. *)
val acquire : t -> Core.Static.Footprint.t -> ticket

val release : t -> ticket -> unit

(** Exception-safe scoped admission. *)
val with_footprint : t -> Core.Static.Footprint.t -> (unit -> 'a) -> 'a

(** [with_footprint] with {!Core.Static.Footprint.read_all}. *)
val with_read : t -> (unit -> 'a) -> 'a

(** [with_footprint] with {!Core.Static.Footprint.top}. *)
val with_write : t -> (unit -> 'a) -> 'a

(** Currently admitted jobs / currently admitted writing jobs. *)
val running : t -> int

val running_writers : t -> int

(** High-water marks since creation (all jobs / writing jobs). *)
val peak : t -> int

val writer_peak : t -> int
