(** Readers–writer lock with writer preference. The scheduler's
    purity gate: Pure queries share the read side, Updating/Effecting
    queries take the write side exclusively. *)

type t

val create : unit -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

(** Exception-safe scoped forms. *)
val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a
