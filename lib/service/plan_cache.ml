(* Bounded LRU cache of prepared query plans, keyed on the
   whitespace-normalized query source. A hit skips the whole
   parse → normalize → static-check → rewrite pipeline (bench E15
   measures what that saves); eviction is least-recently-used so a
   service's steady-state working set stays resident.

   Thread-safe: the service submits from many client threads.
   Eviction scans the table (O(capacity)) — irrelevant next to a
   compile, which is what a miss costs anyway. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Key normalization: collapse whitespace runs so trivial reformatting
   of a repeated query still hits — but only *outside* string/attribute
   literals and comments. Whitespace inside a literal is significant
   ('a b' and 'a  b' are different queries); collapsing it used to map
   both to one key and serve one query the other's plan, a silent
   wrong-answer bug. Literals and (: ... :) comments are copied
   verbatim: literals because their spelling is the value, comments
   conservatively (a comment-only difference now misses the cache,
   which costs a compile, never a wrong answer). The scanner mirrors
   the lexer's rules: quotes are escaped by doubling ("" / ''),
   comments nest. *)
let normalize_key src =
  let n = String.length src in
  let buf = Buffer.create n in
  let pending_ws = ref false in
  let flush_ws () =
    if !pending_ws then begin
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      pending_ws := false
    end
  in
  let i = ref 0 in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' ->
      pending_ws := true;
      incr i
    | ('"' | '\'') as quote ->
      flush_ws ();
      Buffer.add_char buf quote;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        Buffer.add_char buf c;
        incr i;
        if c = quote then
          if !i < n && src.[!i] = quote then begin
            (* doubled quote: escaped, still inside the literal *)
            Buffer.add_char buf quote;
            incr i
          end
          else closed := true
      done
    | '(' when !i + 1 < n && src.[!i + 1] = ':' ->
      flush_ws ();
      Buffer.add_string buf "(:";
      i := !i + 2;
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = ':' then begin
          Buffer.add_string buf "(:";
          incr depth;
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = ':' && src.[!i + 1] = ')' then begin
          Buffer.add_string buf ":)";
          decr depth;
          i := !i + 2
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done
    | c ->
      flush_ws ();
      Buffer.add_char buf c;
      incr i
  done;
  Buffer.contents buf

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        e.last_used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.capacity then begin
        (* evict the least-recently-used entry *)
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, best) when best <= e.last_used -> acc
              | _ -> Some (k, e.last_used))
            t.tbl None
        in
        match victim with
        | Some (k, _) ->
          Hashtbl.remove t.tbl k;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      Hashtbl.replace t.tbl key { value; last_used = t.tick })

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })
