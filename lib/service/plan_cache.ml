(* Bounded LRU cache of prepared query plans, keyed on the
   whitespace-normalized query source. A hit skips the whole
   parse → normalize → static-check → rewrite pipeline (bench E15
   measures what that saves); eviction is least-recently-used so a
   service's steady-state working set stays resident.

   Thread-safe: the service submits from many client threads.
   Eviction scans the table (O(capacity)) — irrelevant next to a
   compile, which is what a miss costs anyway. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Key normalization: collapse whitespace runs so trivial reformatting
   of a repeated query still hits. *)
let normalize_key src =
  let buf = Buffer.create (String.length src) in
  let in_ws = ref true (* leading whitespace dropped *) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if not !in_ws then in_ws := true
      | c ->
        if !in_ws && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        in_ws := false;
        Buffer.add_char buf c)
    src;
  Buffer.contents buf

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        e.last_used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.capacity then begin
        (* evict the least-recently-used entry *)
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, best) when best <= e.last_used -> acc
              | _ -> Some (k, e.last_used))
            t.tbl None
        in
        match victim with
        | Some (k, _) ->
          Hashtbl.remove t.tbl k;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      Hashtbl.replace t.tbl key { value; last_used = t.tick })

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })
