(** The TCP wire edge of [xqbang serve]: accepts connections on
    127.0.0.1 and speaks the newline-delimited {!Protocol}, in one of
    two interchangeable modes.

    {b Fiber} (default): a single event-loop thread
    ({!Xqb_fiber.Fiber}) multiplexes every connection as a fiber over
    non-blocking sockets. Each connection parses requests
    incrementally from a growable buffer — no [in_channel] — and
    {b pipelines}: any number of requests may be in flight, responses
    always return in submission order. Query/EXPLAIN jobs are
    batch-submitted into the shared domain scheduler per readiness
    cycle and completed via {!Scheduler.on_complete} callbacks (no OS
    thread ever parks in [await]). Backpressure follows the
    governor's [Overloaded] taxonomy in two stages: at the {e soft}
    watermark (3/4 of the scheduler's [max_queue]) a connection stops
    {e reading} — requests already parsed still run, TCP pushes back
    on the client — and resumes when the queue drains; only at the
    {e hard} watermark ([max_queue] itself, enforced by the scheduler)
    are requests answered [ERR [overloaded]].

    {b Threads}: the legacy thread-per-connection loop, kept as the
    A/B fallback ([--edge threads]). Both modes survive transient
    [accept] failures (EMFILE/ENFILE back off, ECONNABORTED/EINTR
    retry), set [TCP_NODELAY] on accepted sockets, enforce
    [max_conns], and publish the same gauges through
    {!Service.set_edge_source}. *)

type mode = Fiber | Threads

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string

type config = {
  port : int;  (** 0 picks an ephemeral port — see {!port} *)
  backlog : int;  (** listen(2) backlog *)
  max_conns : int;  (** refuse connections past this; 0 = unlimited *)
  idle_timeout_ms : int;
      (** disconnect a connection with no traffic and no in-flight
          requests after this long; 0 = never *)
  mode : mode;
}

val default_config : config
(** port 0, backlog 64, unlimited connections, no idle timeout,
    fiber mode. *)

type t

val start : Service.t -> config -> t
(** Bind, listen and serve in a background thread; returns once the
    socket is listening. Registers the gauge source on the service.
    @raise Failure when the port cannot be bound. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val stop : t -> unit
(** Stop accepting, tear down open connections, join the serving
    thread. Idempotent. *)

val join : t -> unit
(** Block until the edge stops (i.e. forever, absent {!stop} or a
    fatal listener error). *)

val gauges : t -> Service.edge_gauges

val session_loop : Service.t -> in_channel -> out_channel -> unit
(** The blocking one-session loop shared by the [Threads] mode and
    the stdin path of [xqbang serve] (no [--port]): read a request
    line, dispatch, write the reply, until EOF or [QUIT]. *)
