(** The query service: multi-client sessions over one shared store,
    with a cross-session prepared-plan cache, a footprint-gated
    parallel scheduler (jobs with provably disjoint static effects
    footprints run concurrently — including updating jobs over
    disjoint documents) and per-query resource governance (deadlines,
    fuel, pending-∆ caps, cooperative cancellation, admission
    control). See docs/SERVICE.md for the architecture. *)

type t

(** Session handles are plain ints (they cross the wire protocol).

    Governance knobs (all optional; service-wide, applied per query):
    [deadline_ms] wall-clock budget (also spawns the deadline
    watchdog), [fuel] evaluation-step budget, [max_delta] cap on one
    snap frame's pending updates, [max_queue] scheduler admission
    watermark. With none set the service is ungoverned except that
    {!cancel} always works.

    Durability ([durability]): recover the store from [cfg.dir]
    (latest valid snapshot + WAL tail replay) and append every
    committed write to the WAL before acknowledging it — see
    docs/DURABILITY.md. Replication: [replica] makes the service a
    read-only replica whose store is fed by {!replica_ingest};
    [replica_of] ("HOST:PORT") additionally names the leader for
    {!start_replication}'s polling thread. A replica keeps no WAL of
    its own: [durability] and replica mode are mutually exclusive
    (@raise Failure).

    Continuous profiling: [profile_hz] arms the process-global
    sampling profiler ({!Xqb_obs.Profile}) at boot — without it the
    profiler stays off until a wire [PROFILE START], which uses this
    service's configured rate (default 97). [gc_pause_warn_ms]
    (default 50) degrades health ([gc-pause], 4× = critical) when
    the GC's p99 pause over the sliding 10s window exceeds it. Both
    must be positive (@raise Invalid_argument).

    [footprint_scheduling] (default true) gates jobs on their static
    effects footprints; [false] restores the binary purity gate
    (read-everything / exclusive ⊤) — the single-writer baseline of
    bench E21.

    Health telemetry: [slo_p99_ms] (default 250) / [slo_err_pct]
    (default 1) set the SLO targets behind the rolling-window burn
    rates; [trace_ring] (default 32) the TRACE ring capacity;
    [stall_ms] (default 1000) the no-progress bound the stall
    watchdog and HEALTH check against; [fsync_warn_ms] (default 100)
    degrades health when the fsync p99 exceeds it; [lag_warn_frames]
    (default 256) degrades health when a replica falls that far
    behind (4× = critical; 0 disables). [telemetry] (default true)
    switches the event log, rolling windows and monitor thread on;
    [false] is bench E22's baseline. [events_cap] bounds the
    in-memory event ring (default 512). *)
val create :
  ?domains:int ->
  ?cache_capacity:int ->
  ?seed:int ->
  ?deadline_ms:int ->
  ?fuel:int ->
  ?max_delta:int ->
  ?max_queue:int ->
  ?tracing:bool ->
  ?slow_apply_ms:int ->
  ?durability:Xqb_wal.Durable.config ->
  ?replica:bool ->
  ?replica_of:string ->
  ?footprint_scheduling:bool ->
  ?slo_p99_ms:float ->
  ?slo_err_pct:float ->
  ?trace_ring:int ->
  ?stall_ms:int ->
  ?fsync_warn_ms:int ->
  ?lag_warn_frames:int ->
  ?telemetry:bool ->
  ?events_cap:int ->
  ?profile_hz:int ->
  ?gc_pause_warn_ms:int ->
  unit ->
  t

val catalog : t -> Catalog.t
val scheduler : t -> Scheduler.t
val metrics : t -> Metrics.t

(** A fresh session: its own engine (functions, globals, snap
    semantics) over the shared catalog store. *)
val open_session : t -> int

(** Releases the session's catalog references. Idempotent. *)
val close_session : t -> int -> unit

val session_count : t -> int

(** Load [xml] into the shared catalog under [uri] (load-once;
    subsequent sessions reuse the resident tree) and attach it to the
    session: resolvable via [fn:doc(uri)] and bound to [$uri].
    @raise Failure on an unknown session. *)
val load_document : t -> int -> uri:string -> string -> unit

(** Submit a query; returns the job id (usable with {!cancel} while
    the job is queued or running) and a future resolving to the
    serialized result or a structured error. Parallel-safe programs
    (Pure and allocation-free) run concurrently against a
    submission-time fork of the session; updating programs run on the
    session itself, concurrently with every job whose static
    footprint is provably disjoint, their ∆ applications serialized
    on the global apply mutex (each top-level snap is transactional:
    an apply-time failure rolls back before the WAL sees it).
    Effecting programs and inconclusive footprints serialize
    exclusively under whole-job rollback, exactly the old writer
    path.
    @raise Failure on an unknown session. *)
val submit_job :
  t -> int -> string -> int * (string, Service_error.t) result Scheduler.future

(** {!submit_job} without the job id. *)
val submit :
  t -> int -> string -> (string, Service_error.t) result Scheduler.future

(** Await a submission, folding scheduler-level failures (queue
    expiry, shutdown) into the structured taxonomy. *)
val await :
  (string, Service_error.t) result Scheduler.future ->
  (string, Service_error.t) result

(** Synchronous [submit] + {!await}. *)
val query : t -> int -> string -> (string, Service_error.t) result

(** EXPLAIN ANALYZE (wire [EXPLAIN]): run the query through the
    algebraic compiler with per-operator profiling and return the
    annotated plan tree. Executes for real (side effects included) on
    the write side under the usual governance; bypasses the plan
    cache. *)
val explain_job :
  t -> int -> string -> int * (string, Service_error.t) result Scheduler.future

(** Synchronous {!explain_job}. *)
val explain : t -> int -> string -> (string, Service_error.t) result

(** Chrome trace-event JSON of job [jid], or of the most recent
    traced job when [None]. Returns the job id with the JSON; [None]
    when tracing is off, the job was never traced, or it has fallen
    out of the bounded ring. *)
val trace_json : t -> int option -> (int * string) option

(** Request cancellation of an in-flight job (wire [CANCEL]). True
    if the job was found; it fails with kind [Cancelled] at its next
    budget poll. *)
val cancel : t -> int -> bool

val inflight_count : t -> int

(** The message part of a classified exception (compat helper). *)
val error_message : exn -> string

val cache_stats : t -> Plan_cache.stats

(** Footprint-gate gauges as JSON: whether footprint scheduling is
    on, currently admitted jobs (all / holding write regions) and
    their high-water marks since boot. Also embedded in
    {!stats_json} under ["concurrency"]. *)
val concurrency_json : t -> string

(** Metrics + plan-cache + catalog + in-flight jobs + rolling windows
    + health + telemetry gauges as JSON. *)
val stats_json : t -> string

(** Wire [METRICS PROM]: every layer's contribution (service
    counters, windows and SLO burn rates, gate / trace-ring / event
    gauges, WAL and checkpoint gauges, replica lag, health status) on
    one shared {!Xqb_obs.Prom} emitter, so [# HELP]/[# TYPE]
    discipline and counter naming hold page-wide. *)
val metrics_prometheus : t -> string

(** {1 Wire-edge gauges}

    The TCP edge ({!Edge}) registers a snapshot source here so
    STATS/HEALTH/metrics surface connection counts and backpressure
    state; the service itself never depends on the edge module. *)

type edge_gauges = {
  eg_mode : string;  (** ["fiber"] | ["threads"] *)
  eg_open : int;  (** connections open now *)
  eg_peak : int;  (** peak concurrently open since boot *)
  eg_accepted : int;  (** connections accepted since boot *)
  eg_conn_rejects : int;  (** connections refused at [--max-conns] *)
  eg_suspended : int;  (** connections currently read-suspended *)
  eg_suspensions : int;  (** read-suspension episodes since boot *)
  eg_overload_rejects : int;  (** requests rejected at the hard watermark *)
  eg_requests : int;  (** requests parsed off the wire *)
  eg_batches : int;  (** readiness-cycle admission batches *)
  eg_max_conns : int;  (** configured cap; 0 = unlimited *)
}

val set_edge_source : t -> (unit -> edge_gauges) option -> unit
val edge_gauges : t -> edge_gauges option

(** {1 Service health telemetry} *)

(** The structured event log (lifecycle, WAL commits/checkpoints,
    overload, slow queries, replica and stall events). *)
val events : t -> Xqb_obs.Events.t

(** Wire [EVENTS]: the last [n] retained events at [level] (default
    all) or above as a JSON array, oldest first. *)
val events_json : ?level:Xqb_obs.Events.severity -> t -> int -> string

(** Wire [HEALTH]: overall status + machine-readable reasons, e.g.
    [{"status":"degraded","reasons":[{"code":"queue-depth",...}]}].
    Checks: queue depth against the admission watermark, edge
    connection saturation and read-suspension backpressure,
    10s-window SLO burn rates, fsync p99 / in-flight fsync age,
    apply-mutex hold time, queue-head age, replica lag and link
    state (both sides). *)
val health_json : t -> string

(** Just the status: ["ok"] | ["degraded"] | ["critical"]. *)
val health_status : t -> string

(** (occupancy, capacity, evictions since boot) of the TRACE ring. *)
val trace_ring_stats : t -> int * int * int

(** Write a flight-recorder dump (event tail, in-flight jobs, gate +
    queue + health state) to [flight-<ts>.json] under the data
    directory; [None] without one (or when the write fails). *)
val write_flight : t -> reason:string -> string option

(** The dump {!write_flight} would write, as JSON. *)
val flight_json : t -> reason:string -> string

(** Path of the flight dump the boot wrote after detecting an unclean
    prior shutdown (the events sink did not end in
    [lifecycle.shutdown]); [None] on a clean boot. *)
val boot_flight : t -> string option

(** Install the serve-process crash hooks: a SIGTERM handler and an
    [at_exit] guard, each writing one flight dump if the service is
    not shutting down cleanly. Library embedders should not call
    this — it takes over process signals. *)
val install_crash_hooks : t -> unit

(** Fault injection for tests: stall every WAL fsync by [secs]
    (see {!Xqb_wal.Wal.inject_fsync_delay}); no-op without
    durability. *)
val inject_fsync_delay : t -> float -> unit

(** Fault injection for tests: floor the GC telemetry's reported 10s
    p99 pause at [ms], deterministically tripping the [gc-pause]
    health reason; {!clear_gc_pause_injection} reverts it. No-op
    when telemetry is off. *)
val inject_gc_pause : t -> int -> unit

val clear_gc_pause_injection : t -> unit

(** Wire [PROFILE]: drive the process-global continuous profiler.
    [`Start] arms it at this service's [profile_hz] (idempotent),
    [`Stop] disarms keeping the samples, [`Dump] returns the folded
    flamegraph text, [`Dump_json] the same as JSON, [`Stat] a status
    document. *)
val profile_command :
  t -> [ `Start | `Stop | `Dump | `Dump_json | `Stat ] -> string

(** The last write-side job's ∆ statistics as JSON (requests by
    kind, snap-depth histogram, conflicts checked, apply-phase wall
    time) — the wire [DELTA] payload. [None] before any write-side
    job ran. *)
val delta_json : t -> string option

(** The slow-effect log as a JSON array, newest first: write-side
    jobs whose ∆-apply phase exceeded [slow_apply_ms], each with its
    ∆ summary and trace id (wire [SLOWLOG]). *)
val slowlog_json : t -> string

val slowlog_length : t -> int

(** {1 Durability and replication} *)

(** True in replica mode: updating/effecting queries, EXPLAIN and
    fresh document loads are rejected with a one-line error; reads
    (and LOAD of an already-replicated URI) serve normally. *)
val read_only : t -> bool

(** Durability gauges as JSON; [None] without [durability]. *)
val durability_json : t -> string option

(** Wire [JOURNAL STAT]: in-memory journal length, node count, the
    canonical store digest (equal across leader, replicas and a
    recovered store iff their states agree) and the durable/applied
    LSN. *)
val journal_stat_json : t -> string

(** Wire [REPLICA STAT]. On a replica: applied/received/leader LSNs,
    lag in frames, bytes (received-but-unapplied) and ms, status. On
    the leader: [{"replica":false,...}] with the per-peer lag table
    fed by SHIP replica ids. *)
val replica_stat_json : t -> string

(** Wire [CHECKPOINT]: force a snapshot now (write lock; flushes the
    journal tail first). Returns the checkpoint LSN. *)
val checkpoint_now : t -> (int, string) result

(** Wire [SHIP]: committed WAL frames from [from_lsn] (at most [max])
    as [(leader last LSN, concatenated raw frames)]. [replica_id]
    (SHIP's optional third argument) updates the leader's per-peer
    lag table — requesting from [from_lsn] acknowledges everything
    below it. [Error] when the service is not durable or [from_lsn]
    predates the last checkpoint (the replica must re-bootstrap). *)
val ship_frames :
  ?replica_id:string -> t -> from_lsn:int -> max:int -> (int * string, string) result

(** Wire [SNAPSHOT]: a serialized snapshot of the current state for
    replica bootstrap, [(lsn, blob)]. *)
val snapshot_blob : t -> (int * string, string) result

(** Replica side: restore a {!snapshot_blob} into the (empty) store
    and register its documents. Returns the snapshot LSN. *)
val replica_bootstrap : t -> string -> (int, string) result

(** Replica side: apply a batch of shipped frames (idempotent —
    already-seen LSNs are skipped; a cut transaction span buffers
    until its remainder arrives). Returns frames applied. *)
val replica_ingest : t -> leader_lsn:int -> string -> (int, string) result

(** Start the leader-polling thread when [replica_of] was given
    (bootstrap via SNAPSHOT, then SHIP forever). No-op otherwise. *)
val start_replication : t -> unit

(** Stop the service. Without [deadline] drain queued jobs; with
    [deadline] (seconds) give them that long, then abandon the queue
    and cancel in-flight budgets. Closes the WAL (final fsync) and
    stops the replication thread. *)
val shutdown : ?deadline:float -> t -> unit
