(** The query service: multi-client sessions over one shared store,
    with a cross-session prepared-plan cache and a purity-gated
    parallel scheduler. See docs/SERVICE.md for the architecture. *)

type t

(** Session handles are plain ints (they cross the wire protocol). *)
val create : ?domains:int -> ?cache_capacity:int -> ?seed:int -> unit -> t

val catalog : t -> Catalog.t
val scheduler : t -> Scheduler.t
val metrics : t -> Metrics.t

(** A fresh session: its own engine (functions, globals, snap
    semantics) over the shared catalog store. *)
val open_session : t -> int

(** Releases the session's catalog references. Idempotent. *)
val close_session : t -> int -> unit

val session_count : t -> int

(** Load [xml] into the shared catalog under [uri] (load-once;
    subsequent sessions reuse the resident tree) and attach it to the
    session: resolvable via [fn:doc(uri)] and bound to [$uri].
    @raise Failure on an unknown session. *)
val load_document : t -> int -> uri:string -> string -> unit

(** Submit a query; the future resolves to the serialized result or
    an error message. Parallel-safe programs (Pure and
    allocation-free) run concurrently on the scheduler's read side
    against a submission-time fork of the session; all others
    serialize on the write side with full snap semantics.
    @raise Failure on an unknown session. *)
val submit : t -> int -> string -> (string, string) result Scheduler.future

(** Synchronous [submit] + await. *)
val query : t -> int -> string -> (string, string) result

val cache_stats : t -> Plan_cache.stats

(** Metrics + plan-cache + catalog state as a JSON object. *)
val stats_json : t -> string

(** Stop the scheduler's worker domains (queued jobs still run). *)
val shutdown : t -> unit
