(** Purity-gated scheduler: a fixed pool of OCaml 5 domains plus a
    readers–writer lock. Non-exclusive jobs (statically parallel-safe
    queries) share the read side and run concurrently; exclusive jobs
    (updating/effecting queries, document loads) serialize on the
    write side. [domains = 0] executes synchronously in the caller
    (still lock-gated) — the "scheduler off" baseline. *)

type t

type 'a future

val create : ?domains:int -> unit -> t
val domains : t -> int
val queue_depth : t -> int

val submit : t -> exclusive:bool -> (unit -> 'a) -> 'a future

(** Blocks until the job has run. *)
val await : 'a future -> ('a, exn) result

val await_exn : 'a future -> 'a

(** An already-completed future holding [v]. *)
val ready : 'a -> 'a future

(** Run [f] under the gate directly, bypassing the queue (used for
    synchronous shared-state operations such as catalog loads). *)
val with_write : t -> (unit -> 'a) -> 'a

val with_read : t -> (unit -> 'a) -> 'a

(** Drain queued jobs, stop the workers, join the domains. *)
val shutdown : t -> unit
