(** Footprint-gated scheduler: a fixed pool of OCaml 5 domains plus a
    FIFO footprint gate ({!Rwlock}). Read-only jobs (statically
    parallel-safe queries) share the gate freely; updating jobs run
    concurrently with everything provably disjoint from their static
    footprint; ⊤-footprint jobs (inconclusive analysis, document
    loads) serialize like the old exclusive writer. ∆ application is
    *not* covered by the gate — concurrent writers serialize their
    apply phase on {!with_apply}. [domains = 0] executes synchronously
    in the caller (still gate-admitted) — the "scheduler off"
    baseline.

    Admission control: the queue is bounded ([max_queue]); over the
    watermark, {!submit} raises {!Overloaded} instead of queuing.
    Jobs may carry a queue-time deadline on the monotonic
    {!Xqb_obs.Clock} scale — expired jobs are never run, their future
    completes with {!Expired_in_queue}; the synchronous configuration
    performs the same check before executing. Submission after
    {!shutdown} raises {!Shut_down} uniformly for the pooled and the
    synchronous configuration. *)

(** Raised by {!submit} when the queue is at its high watermark. *)
exception Overloaded

(** Raised by {!submit} after {!shutdown}; also completes the futures
    of jobs abandoned by a deadlined shutdown. *)
exception Shut_down

(** Completes the future of a job whose queue-time deadline passed
    before a worker picked it up (or, with [domains = 0], before the
    synchronous execution started). *)
exception Expired_in_queue

type t

type 'a future

val create : ?domains:int -> ?max_queue:int -> unit -> t
val domains : t -> int
val queue_depth : t -> int

(** The admission watermark, [None] when unbounded. *)
val max_queue : t -> int option

(** Age (monotonic ns) of the oldest job admitted to the queue but
    not yet started — the stall watchdog's "admitted-but-not-started"
    signal. 0 when the queue is empty. *)
val oldest_queued_age_ns : t -> int

(** How long the global apply mutex has been held by its current
    owner (monotonic ns); 0 when free. Read without locking — stale
    by at most the caller's poll period. *)
val apply_held_ns : t -> int

(** Submit a job. [deadline] (absolute, monotonic {!Xqb_obs.Clock}
    nanoseconds — immune to wall-clock steps) bounds its time in the
    queue; [on_abort] is called (before the future completes) if the
    job is abandoned without running — queue expiry or shutdown
    drain. [footprint] admits the job against the gate (default: ⊤
    when [exclusive], read-everything otherwise). [trace] makes the
    scheduler record the two waits only it can see: "queue.wait"
    (submit → dequeue; tagged ["expired" = "true"] when the job was
    aborted at dequeue) and "lock.wait" (blocked on the gate).
    @raise Shut_down after {!shutdown}
    @raise Overloaded when the queue is full. *)
val submit :
  t ->
  ?deadline:int ->
  ?on_abort:(exn -> unit) ->
  ?trace:Xqb_obs.Trace.t ->
  ?footprint:Core.Static.Footprint.t ->
  exclusive:bool ->
  (unit -> 'a) ->
  'a future

(** Blocks until the job has run (or was aborted). *)
val await : 'a future -> ('a, exn) result

val await_exn : 'a future -> 'a

(** [on_complete fut cb] registers a completion callback instead of
    blocking: a pending future runs [cb result] (outside the future's
    lock) on the thread that completes it — a worker domain — and an
    already-completed future runs it immediately in the caller. The
    fiber edge uses this to wake a connection's event loop when a
    pipelined job finishes; callbacks must therefore be cheap and
    must not submit work recursively. Exceptions from [cb] are
    swallowed. *)
val on_complete : 'a future -> (('a, exn) result -> unit) -> unit

(** [peek fut] is the result if the future has completed, without
    blocking. *)
val peek : 'a future -> ('a, exn) result option

(** An already-completed future holding [v]. *)
val ready : 'a -> 'a future

(** An already-failed future holding [e]. *)
val failed : exn -> 'a future

(** Run [f] under the gate directly, bypassing the queue (used for
    synchronous shared-state operations such as catalog loads). *)
val with_write : t -> (unit -> 'a) -> 'a

val with_read : t -> (unit -> 'a) -> 'a

(** Gate admission with an explicit footprint, bypassing the queue. *)
val with_footprint : t -> Core.Static.Footprint.t -> (unit -> 'a) -> 'a

(** The global apply mutex: concurrent writers evaluate in parallel
    but run their snap-apply + WAL append inside [with_apply]. *)
val with_apply : t -> (unit -> 'a) -> 'a

(** The underlying footprint gate (metrics: running/peak counts). *)
val gate : t -> Rwlock.t

(** Stop accepting work and wind the pool down. Without [deadline],
    drain: queued jobs still run. With [deadline] (seconds, measured
    on the monotonic clock), wait at most that long for queued +
    running jobs; then abandon still-queued jobs (futures complete
    with {!Shut_down}) and call [on_deadline] — the service cancels
    in-flight budgets there so running jobs die at their next poll —
    before joining workers. *)
val shutdown : ?deadline:float -> ?on_deadline:(unit -> unit) -> t -> unit
