(* The footprint-gated scheduler: a fixed pool of OCaml 5 domains
   draining one job queue, with a FIFO footprint gate (Rwlock) as the
   admission control. Every job carries a static effects footprint:
   read-only jobs (statically Pure and allocation-free programs —
   {!Core.Static.prog_parallel_safe}) enter with a read-everything
   footprint and run concurrently; updating jobs enter with the
   footprint inferred from their plan and run concurrently with
   everything provably disjoint from it (other documents, other
   subtrees); jobs the analysis can't pin down (and document loads,
   EXPLAIN, maintenance) enter with ⊤ and serialize exactly like the
   old exclusive writer. Within one query, evaluation order is
   exactly the paper's: a job never migrates between domains.

   ∆ application, WAL appends and wal_seq advancement are *not*
   covered by the gate — concurrent writers evaluate in parallel but
   apply serially under {!with_apply}, the global apply mutex, which
   keeps the mutation journal's transaction spans contiguous and the
   WAL byte order deterministic.

   [domains = 0] degenerates to synchronous in-caller execution
   (still gate-admitted) — the "scheduler off" baseline in bench E15.

   Admission control: the queue is bounded ([max_queue], default
   unbounded); a submission over the high watermark raises
   [Overloaded] in the caller instead of queuing. Each job may carry
   a queue-time [deadline] in *monotonic* Clock nanoseconds — wall
   clock steps (NTP, VM suspend) must not expire queued jobs, and
   must not keep expired ones alive. A worker that dequeues an
   already-expired job completes its future with [Expired_in_queue]
   without running it; the synchronous path performs the same check
   before executing. Submission after [shutdown] raises [Shut_down]
   uniformly in both configurations. *)

module FP = Core.Static.Footprint
module Clock = Xqb_obs.Clock

exception Overloaded
exception Shut_down
exception Expired_in_queue

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
  mutable callbacks : (('a, exn) result -> unit) list;
    (* run once, outside the lock, on the thread that fills the
       future (a worker domain) — or immediately in the caller when
       registered on an already-completed future *)
}

type job = {
  footprint : FP.t;
  deadline : int;  (* absolute queue-time deadline, Clock ns; max_int = none *)
  run : unit -> unit;
  abort : exn -> unit;  (* complete the future without running *)
  trace : Xqb_obs.Trace.t option;
    (* the job's tracer, for the two waits only this layer can see:
       time in the queue and time blocked on the footprint gate *)
  submitted_ns : int;
    (* Clock scale; always set — the stall watchdog reads the queue
       head's age through {!oldest_queued_age_ns} *)
}

type t = {
  rw : Rwlock.t;
  apply_mu : Mutex.t;  (* serializes snap-apply + WAL append *)
  mutable apply_since_ns : int;
    (* Clock ns when the current apply-mutex holder entered; 0 = free.
       Written only by the holder; read unlocked by the stall
       watchdog — a torn read is impossible (tagged int) and a stale
       one only shifts a detection by a poll period. *)
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable active : int;  (* pool jobs currently executing *)
  mutable workers : unit Domain.t array;
  domains : int;
  max_queue : int;
}

let new_future () =
  {
    fmutex = Mutex.create ();
    fcond = Condition.create ();
    state = Pending;
    callbacks = [];
  }

let fill fut result =
  Mutex.lock fut.fmutex;
  fut.state <- Done result;
  let cbs = List.rev fut.callbacks in
  fut.callbacks <- [];
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex;
  List.iter (fun cb -> try cb result with _ -> ()) cbs

(* Register a completion callback. A pending future runs it (outside
   the lock) on the thread that fills it; a completed future runs it
   immediately in the caller. The fiber edge hangs connection wakeups
   here instead of parking an OS thread in [await]. *)
let on_complete fut cb =
  Mutex.lock fut.fmutex;
  match fut.state with
  | Done r ->
    Mutex.unlock fut.fmutex;
    (try cb r with _ -> ())
  | Pending ->
    fut.callbacks <- cb :: fut.callbacks;
    Mutex.unlock fut.fmutex

let await fut =
  Mutex.lock fut.fmutex;
  while fut.state = Pending do
    Condition.wait fut.fcond fut.fmutex
  done;
  let r = match fut.state with Done r -> r | Pending -> assert false in
  Mutex.unlock fut.fmutex;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

(* An already-completed future (e.g. a submission rejected at compile
   time: there is nothing to schedule but callers still get the
   uniform future interface). *)
let ready v =
  let fut = new_future () in
  fut.state <- Done (Ok v);
  fut

let failed e =
  let fut = new_future () in
  fut.state <- Done (Error e);
  fut

let peek fut =
  Mutex.lock fut.fmutex;
  let r = match fut.state with Done r -> Some r | Pending -> None in
  Mutex.unlock fut.fmutex;
  r

let expired job = job.deadline <> max_int && Clock.now_ns () > job.deadline

(* Run [job.run] with its footprint admitted. With a tracer, the gap
   between requesting admission and the body starting is recorded as
   "lock.wait" — for a conflicting job behind long independent work
   this is exactly the gate blocking the trace should show. *)
let execute t job =
  let body =
    match job.trace with
    | None -> job.run
    | Some tr ->
      let requested_ns = Clock.now_ns () in
      fun () ->
        Xqb_obs.Trace.add_span ~cat:"sched"
          ~args:
            [
              ( "side",
                if FP.writes_nothing job.footprint then "read" else "write" );
            ]
          tr ~name:"lock.wait" ~start_ns:requested_ns
          ~dur_ns:(Clock.now_ns () - requested_ns)
          ();
        job.run ()
  in
  Rwlock.with_footprint t.rw job.footprint body

(* The dequeue-side deadline check and its trace span. An expired job
   is aborted without running; its queue.wait span (the only span the
   job will ever have) is tagged ["expired" = "true"] so traces can't
   be read as phantom execution of work that never ran. *)
let run_or_expire t job =
  let was_expired = expired job in
  (match job.trace with
  | Some tr ->
    Xqb_obs.Trace.add_span ~cat:"sched"
      ~args:(if was_expired then [ ("expired", "true") ] else [])
      tr ~name:"queue.wait" ~start_ns:job.submitted_ns
      ~dur_ns:(Clock.now_ns () - job.submitted_ns)
      ()
  | None -> ());
  if was_expired then (try job.abort Expired_in_queue with _ -> ())
  else execute t job

let worker_loop t () =
  let rec next () =
    Mutex.lock t.qmutex;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some job ->
        t.active <- t.active + 1;
        Mutex.unlock t.qmutex;
        Some job
      | None ->
        if t.stopping then begin
          Mutex.unlock t.qmutex;
          None
        end
        else begin
          Condition.wait t.qcond t.qmutex;
          wait ()
        end
    in
    match wait () with
    | None -> ()
    | Some job ->
      run_or_expire t job;
      Mutex.lock t.qmutex;
      t.active <- t.active - 1;
      Mutex.unlock t.qmutex;
      next ()
  in
  next ()

let create ?(domains = 4) ?(max_queue = max_int) () =
  if domains < 0 then invalid_arg "Scheduler.create: negative domain count";
  if max_queue < 1 then invalid_arg "Scheduler.create: max_queue < 1";
  let t =
    {
      rw = Rwlock.create ();
      apply_mu = Mutex.create ();
      apply_since_ns = 0;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      active = 0;
      workers = [||];
      domains;
      max_queue;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop t));
  t

let domains t = t.domains

let queue_depth t =
  Mutex.lock t.qmutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  d

let max_queue t = if t.max_queue = max_int then None else Some t.max_queue

(* Age of the oldest job admitted to the queue but not yet started —
   the watchdog's "admitted-but-not-started" signal. 0 when empty. *)
let oldest_queued_age_ns t =
  Mutex.lock t.qmutex;
  let age =
    match Queue.peek_opt t.queue with
    | Some j -> Clock.now_ns () - j.submitted_ns
    | None -> 0
  in
  Mutex.unlock t.qmutex;
  age

(* Submit [f]; the future completes with its result or exception.
   [deadline] (absolute, monotonic Clock ns) bounds time *in the
   queue* — an expired job is aborted at dequeue, and [on_abort]
   (called before the future is filled) lets the submitter observe
   abandonment (queue expiry, shutdown drain) for metrics/cleanup.
   [footprint] defaults to the binary extremes: [exclusive:true] = ⊤,
   [exclusive:false] = read-everything.
   @raise Shut_down after [shutdown] (both pooled and synchronous)
   @raise Overloaded when the queue is at [max_queue]. *)
let submit t ?(deadline = max_int) ?(on_abort = fun _ -> ()) ?trace ?footprint
    ~exclusive (f : unit -> 'a) : 'a future =
  let footprint =
    match footprint with
    | Some fp -> fp
    | None -> if exclusive then FP.top else FP.read_all
  in
  let fut = new_future () in
  let run () =
    let result = try Ok (f ()) with e -> Error e in
    fill fut result
  in
  let abort e =
    (try on_abort e with _ -> ());
    fill fut (Error e)
  in
  let job =
    { footprint; deadline; run; abort; trace; submitted_ns = Clock.now_ns () }
  in
  if t.domains = 0 then begin
    (* Synchronous path: must agree with the pool on shutdown and on
       deadlines — work submitted after [shutdown] returned must not
       execute, and neither must a job whose deadline already passed
       (the pool would abort it at dequeue). *)
    Mutex.lock t.qmutex;
    let stopping = t.stopping in
    Mutex.unlock t.qmutex;
    if stopping then raise Shut_down;
    run_or_expire t job
  end
  else begin
    Mutex.lock t.qmutex;
    if t.stopping then begin
      Mutex.unlock t.qmutex;
      raise Shut_down
    end;
    if Queue.length t.queue >= t.max_queue then begin
      Mutex.unlock t.qmutex;
      raise Overloaded
    end;
    Queue.add job t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end;
  fut

(* Direct access to the gate, for operations that bypass the queue
   (the service loads documents under ⊤ synchronously). *)
let with_write t f = Rwlock.with_write t.rw f
let with_read t f = Rwlock.with_read t.rw f
let with_footprint t fp f = Rwlock.with_footprint t.rw fp f

(* The global apply mutex: concurrent writers evaluate in parallel
   under the footprint gate but serialize their snap-apply (and the
   WAL append the service performs inside the same critical section)
   here. *)
let with_apply t f =
  Mutex.lock t.apply_mu;
  t.apply_since_ns <- Clock.now_ns ();
  Fun.protect
    ~finally:(fun () ->
      t.apply_since_ns <- 0;
      Mutex.unlock t.apply_mu)
    f

(* How long the apply mutex has been held by its current owner; 0
   when free. Unlocked read — see [apply_since_ns]. *)
let apply_held_ns t =
  match t.apply_since_ns with 0 -> 0 | since -> Clock.now_ns () - since

let gate t = t.rw

(* Stop accepting work and wind the pool down. Without [deadline]:
   drain — queued jobs still execute, then workers exit. With
   [deadline] (seconds, converted to the monotonic scale here so a
   wall-clock step can't cut the drain short or stretch it): wait
   that long for queue + running jobs to finish; past it, abandon
   still-queued jobs (their futures complete with [Shut_down]) and
   call [on_deadline] — the service uses it to cancel in-flight
   budgets so running jobs die at their next poll — then join the
   workers. *)
let shutdown ?deadline ?(on_deadline = fun () -> ()) t =
  Mutex.lock t.qmutex;
  t.stopping <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  (match deadline with
  | None -> ()
  | Some secs ->
    let until_ns = Clock.now_ns () + int_of_float (secs *. 1e9) in
    let busy () =
      Mutex.lock t.qmutex;
      let b = (not (Queue.is_empty t.queue)) || t.active > 0 in
      Mutex.unlock t.qmutex;
      b
    in
    while busy () && Clock.now_ns () < until_ns do
      Unix.sleepf 0.005
    done;
    if busy () then begin
      Mutex.lock t.qmutex;
      let abandoned = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      Mutex.unlock t.qmutex;
      List.iter (fun j -> try j.abort Shut_down with _ -> ()) abandoned;
      on_deadline ()
    end);
  Array.iter Domain.join t.workers;
  t.workers <- [||]
