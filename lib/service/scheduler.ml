(* The purity-gated scheduler: a fixed pool of OCaml 5 domains
   draining one job queue, with a readers–writer lock as the purity
   gate. Jobs submitted with [exclusive:false] (statically Pure and
   allocation-free programs — {!Core.Static.prog_parallel_safe}) run
   under the read side, so any number execute concurrently against
   the shared store; [exclusive:true] jobs (Updating/Effecting, and
   anything else that mutates shared state, e.g. document loads) take
   the write side. Within one query, evaluation order is exactly the
   paper's: a job never migrates between domains.

   [domains = 0] degenerates to synchronous in-caller execution
   (still lock-gated) — the "scheduler off" baseline in bench E15. *)

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type job = { exclusive : bool; run : unit -> unit }

type t = {
  rw : Rwlock.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  domains : int;
}

let new_future () =
  { fmutex = Mutex.create (); fcond = Condition.create (); state = Pending }

let fill fut result =
  Mutex.lock fut.fmutex;
  fut.state <- Done result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let await fut =
  Mutex.lock fut.fmutex;
  while fut.state = Pending do
    Condition.wait fut.fcond fut.fmutex
  done;
  let r = match fut.state with Done r -> r | Pending -> assert false in
  Mutex.unlock fut.fmutex;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

(* An already-completed future (e.g. a submission rejected at compile
   time: there is nothing to schedule but callers still get the
   uniform future interface). *)
let ready v =
  let fut = new_future () in
  fut.state <- Done (Ok v);
  fut

(* Run [job.run] with the appropriate side of the lock held. *)
let execute t job =
  if job.exclusive then Rwlock.with_write t.rw job.run
  else Rwlock.with_read t.rw job.run

let worker_loop t () =
  let rec next () =
    Mutex.lock t.qmutex;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some job ->
        Mutex.unlock t.qmutex;
        Some job
      | None ->
        if t.stopping then begin
          Mutex.unlock t.qmutex;
          None
        end
        else begin
          Condition.wait t.qcond t.qmutex;
          wait ()
        end
    in
    match wait () with
    | None -> ()
    | Some job ->
      execute t job;
      next ()
  in
  next ()

let create ?(domains = 4) () =
  if domains < 0 then invalid_arg "Scheduler.create: negative domain count";
  let t =
    {
      rw = Rwlock.create ();
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      workers = [||];
      domains;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop t));
  t

let domains t = t.domains

let queue_depth t =
  Mutex.lock t.qmutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  d

(* Submit [f]; the future completes with its result or exception. *)
let submit t ~exclusive (f : unit -> 'a) : 'a future =
  let fut = new_future () in
  let run () =
    let result = try Ok (f ()) with e -> Error e in
    fill fut result
  in
  let job = { exclusive; run } in
  if t.domains = 0 then execute t job
  else begin
    Mutex.lock t.qmutex;
    if t.stopping then begin
      Mutex.unlock t.qmutex;
      fill fut (Error (Failure "scheduler is shut down"))
    end
    else begin
      Queue.add job t.queue;
      Condition.signal t.qcond;
      Mutex.unlock t.qmutex
    end
  end;
  fut

(* Direct access to the gate, for operations that bypass the queue
   (the service loads documents under the write side synchronously). *)
let with_write t f = Rwlock.with_write t.rw f
let with_read t f = Rwlock.with_read t.rw f

(* Drain and stop: running jobs finish, queued jobs still execute. *)
let shutdown t =
  Mutex.lock t.qmutex;
  t.stopping <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  Array.iter Domain.join t.workers
