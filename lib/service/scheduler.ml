(* The purity-gated scheduler: a fixed pool of OCaml 5 domains
   draining one job queue, with a readers–writer lock as the purity
   gate. Jobs submitted with [exclusive:false] (statically Pure and
   allocation-free programs — {!Core.Static.prog_parallel_safe}) run
   under the read side, so any number execute concurrently against
   the shared store; [exclusive:true] jobs (Updating/Effecting, and
   anything else that mutates shared state, e.g. document loads) take
   the write side. Within one query, evaluation order is exactly the
   paper's: a job never migrates between domains.

   [domains = 0] degenerates to synchronous in-caller execution
   (still lock-gated) — the "scheduler off" baseline in bench E15.

   Admission control: the queue is bounded ([max_queue], default
   unbounded); a submission over the high watermark raises
   [Overloaded] in the caller instead of queuing — shedding load at
   the door is the only thing that keeps queue wait bounded once the
   pool saturates. Each job may also carry a queue-time [deadline]:
   a worker that dequeues an already-expired job does not run it, it
   completes the job's future with [Expired_in_queue] (running it
   would only burn a worker on an answer nobody is waiting for).
   Submission after [shutdown] raises [Shut_down] uniformly in both
   the pooled and the synchronous configuration. *)

exception Overloaded
exception Shut_down
exception Expired_in_queue

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

type job = {
  exclusive : bool;
  deadline : float;  (* absolute queue-time deadline; infinity = none *)
  run : unit -> unit;
  abort : exn -> unit;  (* complete the future without running *)
  trace : Xqb_obs.Trace.t option;
    (* the job's tracer, for the two waits only this layer can see:
       time in the queue and time blocked on the purity gate *)
  submitted_ns : int;  (* Clock scale; 0 when untraced *)
}

type t = {
  rw : Rwlock.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable active : int;  (* pool jobs currently executing *)
  mutable workers : unit Domain.t array;
  domains : int;
  max_queue : int;
}

let new_future () =
  { fmutex = Mutex.create (); fcond = Condition.create (); state = Pending }

let fill fut result =
  Mutex.lock fut.fmutex;
  fut.state <- Done result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let await fut =
  Mutex.lock fut.fmutex;
  while fut.state = Pending do
    Condition.wait fut.fcond fut.fmutex
  done;
  let r = match fut.state with Done r -> r | Pending -> assert false in
  Mutex.unlock fut.fmutex;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

(* An already-completed future (e.g. a submission rejected at compile
   time: there is nothing to schedule but callers still get the
   uniform future interface). *)
let ready v =
  let fut = new_future () in
  fut.state <- Done (Ok v);
  fut

let failed e =
  let fut = new_future () in
  fut.state <- Done (Error e);
  fut

(* Run [job.run] with the appropriate side of the lock held. With a
   tracer, the gap between requesting the lock and the body starting
   is recorded as "lock.wait" — for an exclusive job behind long
   readers this is exactly the purity-gate blocking the trace should
   show. *)
let execute t job =
  let body =
    match job.trace with
    | None -> job.run
    | Some tr ->
      let requested_ns = Xqb_obs.Clock.now_ns () in
      fun () ->
        Xqb_obs.Trace.add_span ~cat:"sched"
          ~args:[ ("side", if job.exclusive then "write" else "read") ]
          tr ~name:"lock.wait" ~start_ns:requested_ns
          ~dur_ns:(Xqb_obs.Clock.now_ns () - requested_ns)
          ();
        job.run ()
  in
  if job.exclusive then Rwlock.with_write t.rw body
  else Rwlock.with_read t.rw body

let worker_loop t () =
  let rec next () =
    Mutex.lock t.qmutex;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some job ->
        t.active <- t.active + 1;
        Mutex.unlock t.qmutex;
        Some job
      | None ->
        if t.stopping then begin
          Mutex.unlock t.qmutex;
          None
        end
        else begin
          Condition.wait t.qcond t.qmutex;
          wait ()
        end
    in
    match wait () with
    | None -> ()
    | Some job ->
      (match job.trace with
      | Some tr ->
        Xqb_obs.Trace.add_span ~cat:"sched" tr ~name:"queue.wait"
          ~start_ns:job.submitted_ns
          ~dur_ns:(Xqb_obs.Clock.now_ns () - job.submitted_ns)
          ()
      | None -> ());
      (if job.deadline < Unix.gettimeofday () then
         (try job.abort Expired_in_queue with _ -> ())
       else execute t job);
      Mutex.lock t.qmutex;
      t.active <- t.active - 1;
      Mutex.unlock t.qmutex;
      next ()
  in
  next ()

let create ?(domains = 4) ?(max_queue = max_int) () =
  if domains < 0 then invalid_arg "Scheduler.create: negative domain count";
  if max_queue < 1 then invalid_arg "Scheduler.create: max_queue < 1";
  let t =
    {
      rw = Rwlock.create ();
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      active = 0;
      workers = [||];
      domains;
      max_queue;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop t));
  t

let domains t = t.domains

let queue_depth t =
  Mutex.lock t.qmutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  d

(* Submit [f]; the future completes with its result or exception.
   [deadline] (absolute) bounds time *in the queue* — an expired job
   is aborted by the dequeuing worker, and [on_abort] (called before
   the future is filled) lets the submitter observe abandonment
   (queue expiry, shutdown drain) for metrics/cleanup.
   @raise Shut_down after [shutdown] (both pooled and synchronous)
   @raise Overloaded when the queue is at [max_queue]. *)
let submit t ?(deadline = infinity) ?(on_abort = fun _ -> ()) ?trace ~exclusive
    (f : unit -> 'a) : 'a future =
  let fut = new_future () in
  let run () =
    let result = try Ok (f ()) with e -> Error e in
    fill fut result
  in
  let abort e =
    (try on_abort e with _ -> ());
    fill fut (Error e)
  in
  let submitted_ns =
    match trace with Some _ -> Xqb_obs.Clock.now_ns () | None -> 0
  in
  let job = { exclusive; deadline; run; abort; trace; submitted_ns } in
  if t.domains = 0 then begin
    (* Synchronous path: must agree with the pool on shutdown — work
       submitted after [shutdown] returned must not execute. *)
    Mutex.lock t.qmutex;
    let stopping = t.stopping in
    Mutex.unlock t.qmutex;
    if stopping then raise Shut_down;
    execute t job
  end
  else begin
    Mutex.lock t.qmutex;
    if t.stopping then begin
      Mutex.unlock t.qmutex;
      raise Shut_down
    end;
    if Queue.length t.queue >= t.max_queue then begin
      Mutex.unlock t.qmutex;
      raise Overloaded
    end;
    Queue.add job t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end;
  fut

(* Direct access to the gate, for operations that bypass the queue
   (the service loads documents under the write side synchronously). *)
let with_write t f = Rwlock.with_write t.rw f
let with_read t f = Rwlock.with_read t.rw f

(* Stop accepting work and wind the pool down. Without [deadline]:
   drain — queued jobs still execute, then workers exit. With
   [deadline] (seconds): wait that long for queue + running jobs to
   finish; past it, abandon still-queued jobs (their futures complete
   with [Shut_down]) and call [on_deadline] — the service uses it to
   cancel in-flight budgets so running jobs die at their next poll —
   then join the workers. *)
let shutdown ?deadline ?(on_deadline = fun () -> ()) t =
  Mutex.lock t.qmutex;
  t.stopping <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  (match deadline with
  | None -> ()
  | Some secs ->
    let until = Unix.gettimeofday () +. secs in
    let busy () =
      Mutex.lock t.qmutex;
      let b = (not (Queue.is_empty t.queue)) || t.active > 0 in
      Mutex.unlock t.qmutex;
      b
    in
    while busy () && Unix.gettimeofday () < until do
      Unix.sleepf 0.005
    done;
    if busy () then begin
      Mutex.lock t.qmutex;
      let abandoned = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      Mutex.unlock t.qmutex;
      List.iter (fun j -> try j.abort Shut_down with _ -> ()) abandoned;
      on_deadline ()
    end);
  Array.iter Domain.join t.workers;
  t.workers <- [||]
