(* The query service: multi-client sessions over one shared store.

   Putting the pieces together:

   - every session wraps a [Core.Engine.t] sharing the catalog's
     store, so [fn:doc]/bound documents are loaded once and visible
     to all sessions, while functions and globals stay per-session;
   - prepared plans are cached across sessions ({!Plan_cache}),
     keyed on literal-aware whitespace-normalized source — a hit
     skips parse → normalize → static-check → rewrite entirely;
   - execution goes through the footprint-gated {!Scheduler}: every
     plan carries a static effects footprint
     ({!Core.Static.Footprint}) and jobs with provably disjoint
     footprints run concurrently — statically parallel-safe programs
     ({!Core.Static.prog_parallel_safe} — Pure *and* allocation-free)
     as before, but now also updating jobs over disjoint documents or
     subtrees. Inconclusive footprints (dynamic [fn:doc] URIs, upward
     axes, user functions) widen to ⊤ and serialize exactly like the
     old exclusive writer, with the paper's §4.1 runtime conflict
     check still validating every ∆ at apply time;
   - every job runs under a {!Xqb_governor.Budget}: the service-wide
     deadline / fuel / pending-∆ limits if configured, plus a cancel
     token always, so [CANCEL] works even on an unlimited service.
     Budget violations surface as structured {!Service_error}s
     ([timeout] / [cancelled]), admission control as [overloaded];
   - {!Metrics} aggregates per-query latency, queue depth, purity
     counts, plan-cache counters, applied-∆ counts and failed
     queries by taxonomy kind.

   Concurrency protocol, in one place:

   - session mutable state (globals, function table) is only touched
     (a) at submit time under the session lock (compile / install /
     fork) and (b) inside write-side jobs, which also take the
     session lock and additionally exclude every reader via the
     write lock;
   - read-side jobs evaluate in a [Context.fork_read] taken at
     submit time under the session lock, so they observe a coherent
     snapshot of the session and share nothing mutable with it (the
     fork carries the job's budget; [Engine.with_budget] installs it
     on the worker domain for the store layer);
   - the store is only mutated at snap-apply time (evaluation never
     touches it — §3.3, the basis of the whole scheme): concurrent
     writers *evaluate* in parallel under the footprint gate, while
     every ∆ application — and the WAL append recording it —
     serializes on the scheduler's global apply mutex
     ({!Scheduler.with_apply}, installed per-job as the context's
     [apply_wrap]), keeping journal transaction spans contiguous and
     WAL order equal to apply order. The [Always]-policy fsync wait
     happens *outside* the mutex, so concurrent writers share one
     group-commit fsync instead of queueing full syncs;
   - Effecting programs (nested snap semantics), EXPLAIN, document
     loads and checkpoints take a ⊤ footprint — fully exclusive —
     and keep the old path: whole-job [Store.transactionally] plus
     an inline durable flush, so a query killed mid-update leaves
     the store exactly as it found it even if nested snaps had
     already applied. On the concurrent-writer path the rollback
     unit shrinks to one top-level snap: the apply itself is
     transactional (a failure during apply rolls back before the WAL
     sees it), but a job that fails *after* its snap applied — e.g.
     a budget kill during result serialization — reports an error
     for an update that committed, the same guarantee class as a
     connection dropped between commit and acknowledgment. *)

module Engine = Core.Engine
module Budget = Xqb_governor.Budget
module Trace = Xqb_obs.Trace
module Durable = Xqb_wal.Durable
module Wcodec = Xqb_wal.Codec
module FP = Core.Static.Footprint
module Clock = Xqb_obs.Clock
module Events = Xqb_obs.Events
module Window = Xqb_obs.Window
module Prom = Xqb_obs.Prom

type plan = {
  compiled : Engine.compiled;
  purity : Core.Static.purity;  (* of the body, for metrics *)
  parallel : bool;  (* Static.prog_parallel_safe: read-side eligible *)
  footprint : FP.t;
    (* static effects footprint: what the scheduler gates on.
       Computed against the catalog's documents at first compile;
       cached plans keep it (the var_docs question "is $v a document
       root?" is stable for a given URI — documents are load-once) *)
}

type session = {
  sid : int;
  engine : Engine.t;
  slock : Mutex.t;
  mutable docs_held : string list;
}

(* One in-flight (queued or running) governed job, registered so the
   wire [CANCEL], the deadline watchdog and [STATS] can reach it. *)
type inflight = {
  jid : int;
  jsid : int;
  cancel : Budget.cancel;
  started : float;  (* wall clock, for display only *)
  job_deadline : int;
    (* absolute, monotonic Clock ns ([max_int] when ungoverned) — the
       watchdog and the scheduler queue check share one scale that
       wall-clock steps (NTP, VM suspend) cannot move *)
  src : string;
}

(* Wire-edge gauges, pulled (not pushed) from whichever edge is
   serving TCP — see [Edge]. The service only holds a snapshot
   closure so STATS/HEALTH/metrics can surface connection counts and
   backpressure state without depending on the edge module. *)
type edge_gauges = {
  eg_mode : string;  (* "fiber" | "threads" *)
  eg_open : int;  (* connections open now *)
  eg_peak : int;  (* peak concurrently open since boot *)
  eg_accepted : int;  (* connections accepted since boot *)
  eg_conn_rejects : int;  (* connections refused at --max-conns *)
  eg_suspended : int;  (* connections currently read-suspended *)
  eg_suspensions : int;  (* read-suspension episodes since boot *)
  eg_overload_rejects : int;  (* requests rejected at the hard watermark *)
  eg_requests : int;  (* requests parsed off the wire *)
  eg_batches : int;  (* readiness-cycle admission batches *)
  eg_max_conns : int;  (* configured cap; 0 = unlimited *)
}

type t = {
  catalog : Catalog.t;
  cache : plan Plan_cache.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  sessions : (int, session) Hashtbl.t;
  smutex : Mutex.t;
  mutable next_sid : int;
  seed : int;
  (* governance config (service-wide; applied to every query) *)
  deadline_ms : int option;
  fuel : int option;
  max_delta : int option;
  (* footprint scheduling: when off (bench E21's baseline), every
     non-parallel job takes a ⊤ footprint — the old single-writer
     exclusive gate — and commits through the inline durable path *)
  footprints : bool;
  (* in-flight job registry *)
  jobs : (int, inflight) Hashtbl.t;
  jmutex : Mutex.t;
  mutable next_jid : int;
  (* deadline watchdog (spawned only when a deadline is configured) *)
  mutable watchdog : Thread.t option;
  mutable stopping : bool;
  (* tracing: when on, every job records a per-query span trace
     (queue wait, lock wait, compile phases, execution, snap apply),
     kept in a bounded ring for the wire [TRACE] command. Off = each
     instrumentation point costs one branch. *)
  tracing : bool;
  tr_mutex : Mutex.t;
  mutable recent_traces : (int * Trace.t) list;  (* newest first, bounded *)
  trace_cap : int;  (* ring capacity (serve --trace-ring) *)
  mutable trace_evictions : int;  (* traces dropped off the ring *)
  (* service health telemetry: the structured event log (ring +
     per-event-flushed JSONL sink when durable — the sink's tail is
     what the crash flight recorder reconstructs from), the stall
     thresholds the monitor thread and HEALTH check against, and the
     monitor thread itself (stall rising edges + health transitions;
     spawned only when telemetry is on). *)
  events : Events.t;
  data_dir : string option;
  stall_ns : int;  (* no-progress bound: apply held / fsync / queue age *)
  fsync_warn_ns : int;  (* fsync p99 above this degrades health *)
  lag_warn_frames : int;  (* replica lag above this degrades health *)
  mutable monitor : Thread.t option;
  (* leader-side per-replica tracking, keyed on the id the replica
     sends with SHIP *)
  peers : (string, peer) Hashtbl.t;
  pmutex : Mutex.t;
  (* effect observability: per-job ∆ statistics (wire DELTA) and the
     slow-effect log — write-side jobs whose apply phase exceeded
     [slow_ns] leave a ∆ summary + trace id in a bounded ring (wire
     SLOWLOG). *)
  slow_ns : int;
  sl_mutex : Mutex.t;
  mutable slowlog : slow_entry list;  (* newest first, bounded *)
  mutable last_delta : string option;  (* rendered ∆-stats JSON *)
  (* durability (leader side): the WAL/checkpoint manager, plus the
     journal seq of the first in-memory entry not yet appended to
     disk. [wal_seq] is only touched under the scheduler's apply
     mutex or a ⊤ footprint (catalog loads, checkpoints, Effecting
     jobs — which exclude every concurrent apply), so it needs no
     mutex of its own. *)
  durable : Durable.t option;
  mutable wal_seq : int;
  mutable commit_seq : int;  (* commits since boot — wal.commit event sampling *)
  (* replica side: reject write traffic, apply shipped frames *)
  read_only : bool;
  repl : repl option;
  (* wire edge, when one is attached (serve --port) *)
  mutable edge_src : (unit -> edge_gauges) option;
  (* continuous profiling + GC telemetry: the profiler itself is
     process-global (lib/obs Profile); the service carries its
     configured rate (PROFILE START / serve --profile-hz), whether
     boot armed it (so shutdown disarms it), whether this instance
     holds a Gc_tel refcount, and the gc-pause health threshold. *)
  profile_hz : int;
  profile_owned : bool;
  gc_tel : bool;
  gc_pause_warn_ns : int;
  boot_wall : float;  (* process-identity gauges: uptime *)
}

and slow_entry = {
  sl_jid : int;
  sl_sid : int;
  sl_src : string;
  sl_apply_ns : int;
  sl_snaps : int;
  sl_requests : int;
  sl_trace : string option;
  sl_gc_ns : int;  (* GC pause observed during the job (poll-lagged) *)
  sl_samples : (string * int) list;  (* profiler samples by phase *)
}

(* Replica state. [rm] guards every field; the polling thread and
   the wire STAT/ingest paths are the only writers. The entry buffer
   holds the tail of a transaction span whose remainder has not
   shipped yet (the leader's poll window can cut a span in half) —
   entries apply to the store only in complete spans, so a replica
   never serves a half-applied update. *)
and repl = {
  r_leader : string;  (* "host:port", or "" when pumped manually *)
  rm : Mutex.t;
  mutable r_received_lsn : int;  (* highest LSN accepted from the leader *)
  mutable r_applied_lsn : int;  (* highest LSN applied / registered *)
  mutable r_leader_lsn : int;  (* leader's last LSN as of the last SHIP *)
  mutable r_pending : (int * Xqb_store.Store.mj_entry * int) list;
    (* oldest first: lsn, entry, frame bytes — the byte size feeds the
       received-but-not-applied lag gauge *)
  mutable r_frames : int;  (* frames applied since boot *)
  mutable r_status : string;
  mutable r_last_apply : float;
  mutable r_thread : Thread.t option;
  mutable r_sock : Unix.file_descr option;
  mutable r_stop : bool;
}

(* One replica as the leader sees it: [p_acked] is the LSN the
   replica's last SHIP request acknowledged (from_lsn - 1 — it asks
   for what it does not have), [p_shipped] the last LSN we handed it. *)
and peer = {
  mutable p_acked : int;
  mutable p_shipped : int;
  mutable p_last_seen : float;  (* wall clock, for staleness display *)
}

let slowlog_cap = 64

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The watchdog is belt-and-braces on top of the budget's own clock
   polls: it marks the cancel token of any overdue job, catching
   jobs that are stuck somewhere that never reaches a poll point
   (e.g. blocked behind the write lock). First reason wins, so a
   job that already died of its own deadline is unaffected. *)
let watchdog_loop t () =
  while not t.stopping do
    Thread.delay 0.02;
    let now = Clock.now_ns () in
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j ->
            if j.job_deadline <> max_int && now > j.job_deadline then
              Budget.request j.cancel Budget.Deadline)
          t.jobs)
  done

(* -- service health -------------------------------------------------

   [health_reasons] is the single source of truth behind the wire
   HEALTH verb, the monitor thread's transition events and the
   xqbang_health_status gauge: every check yields a machine-readable
   reason (code + level + data fields), and the overall status is the
   worst level present. *)

let field_json = function
  | Events.S s -> Printf.sprintf "\"%s\"" (Xqb_obs.Json.escape s)
  | Events.I i -> string_of_int i
  | Events.F f ->
    if Float.is_finite f then Printf.sprintf "%g" f
    else Printf.sprintf "\"%g\"" f
  | Events.B b -> string_of_bool b

(* Minimum samples before a window's burn rate is trusted: a single
   failed request on an idle service must not flap health. *)
let burn_min_count = 5

(* Burn-rate factor separating "degraded" (>= 1: consuming budget
   faster than sustainable) from "critical" (>= 4: the classic
   fast-burn page threshold). *)
let burn_critical = 4.

let health_reasons t =
  let reasons = ref [] in
  let add code level data = reasons := (code, level, data) :: !reasons in
  (* queue depth against the admission watermark *)
  let depth = Scheduler.queue_depth t.sched in
  let deg_q, crit_q =
    match Scheduler.max_queue t.sched with
    | Some m -> ((m + 1) / 2, Stdlib.max 1 (m * 9 / 10))
    | None -> (128, 1024)
  in
  if depth >= crit_q then
    add "queue-depth" `Critical
      [ ("depth", Events.I depth); ("critical_at", Events.I crit_q) ]
  else if depth >= deg_q then
    add "queue-depth" `Degraded
      [ ("depth", Events.I depth); ("degraded_at", Events.I deg_q) ];
  (* wire edge: connection saturation and read-suspension backpressure *)
  (match t.edge_src with
  | None -> ()
  | Some src ->
    let e = src () in
    if e.eg_max_conns > 0 && e.eg_open >= e.eg_max_conns then
      add "edge-saturated" `Critical
        [ ("open", Events.I e.eg_open); ("max_conns", Events.I e.eg_max_conns) ]
    else if e.eg_max_conns > 0 && e.eg_open * 10 >= e.eg_max_conns * 9 then
      add "edge-saturated" `Degraded
        [ ("open", Events.I e.eg_open); ("max_conns", Events.I e.eg_max_conns) ];
    if e.eg_suspended > 0 then
      add "edge-backpressure" `Degraded
        [
          ("read_suspended", Events.I e.eg_suspended);
          ("queue_depth", Events.I depth);
        ]);
  (* SLO burn over the 10s window (1s is too twitchy for alerting,
     60s too slow to notice an incident starting) *)
  let _, slo_err_pct = Metrics.slo t.metrics in
  List.iter
    (fun (name, (s : Window.snap)) ->
      if name = "10s" && s.Window.count >= burn_min_count then begin
        let avail =
          Window.burn ~frac:s.Window.err_frac ~budget_frac:(slo_err_pct /. 100.)
        in
        let lat = Window.burn ~frac:s.Window.slow_frac ~budget_frac:0.01 in
        let burn code frac burn_rate =
          if burn_rate >= burn_critical then
            add code `Critical
              [ ("burn_rate", Events.F burn_rate); ("frac", Events.F frac) ]
          else if burn_rate >= 1. then
            add code `Degraded
              [ ("burn_rate", Events.F burn_rate); ("frac", Events.F frac) ]
        in
        burn "error-burn" s.Window.err_frac avail;
        burn "latency-burn" s.Window.slow_frac lat
      end)
    (Metrics.window_snaps t.metrics);
  (* durability: a stuck fsync is critical, a merely slow one degrades *)
  (match t.durable with
  | None -> ()
  | Some d ->
    let inflight = Durable.fsync_in_progress_ns d in
    if inflight > t.stall_ns then
      add "fsync-stall" `Critical
        [ ("in_progress_ms", Events.F (float_of_int inflight /. 1e6)) ]
    else begin
      let p99 = Durable.fsync_p99_ns d in
      if p99 > float_of_int t.fsync_warn_ns then
        add "fsync-latency" `Degraded
          [ ("p99_ms", Events.F (p99 /. 1e6)) ]
    end);
  (* GC: a p99 pause over the 10s window past --gc-pause-warn-ms
     degrades (the latency SLO is being eaten by the collector);
     4x past it is the classic fast-burn page threshold. *)
  (if t.gc_tel && Xqb_obs.Gc_tel.enabled () then begin
     let p99 = Xqb_obs.Gc_tel.pause_p99_10s_ns () in
     let warn = float_of_int t.gc_pause_warn_ns in
     let data () =
       [
         ("p99_ms", Events.F (p99 /. 1e6));
         ("warn_ms", Events.F (warn /. 1e6));
       ]
     in
     if p99 >= 4. *. warn then add "gc-pause" `Critical (data ())
     else if p99 >= warn then add "gc-pause" `Degraded (data ())
   end);
  (* no-progress: apply mutex held too long / queue head not started *)
  let held = Scheduler.apply_held_ns t.sched in
  if held > t.stall_ns then
    add "apply-stall" `Critical
      [ ("held_ms", Events.F (float_of_int held /. 1e6)) ];
  let age = Scheduler.oldest_queued_age_ns t.sched in
  if age > t.stall_ns then
    add "queue-stall" `Critical
      [ ("oldest_queued_ms", Events.F (float_of_int age /. 1e6)) ];
  (* replica side: apply lag behind the leader, or a dead link *)
  (match t.repl with
  | None -> ()
  | Some r ->
    locked r.rm (fun () ->
        let lag = Stdlib.max 0 (r.r_leader_lsn - r.r_applied_lsn) in
        if t.lag_warn_frames > 0 && lag >= 4 * t.lag_warn_frames then
          add "replica-lag" `Critical
            [ ("lag_frames", Events.I lag) ]
        else if t.lag_warn_frames > 0 && lag >= t.lag_warn_frames then
          add "replica-lag" `Degraded
            [ ("lag_frames", Events.I lag) ];
        let pre p = String.length r.r_status >= String.length p
                    && String.sub r.r_status 0 (String.length p) = p in
        if pre "stale" then
          add "replica-stale" `Critical [ ("status", Events.S r.r_status) ]
        else if pre "disconnected" then
          add "replica-disconnected" `Degraded
            [ ("status", Events.S r.r_status) ]));
  (* leader side: replicas falling behind the WAL head *)
  (match t.durable with
  | Some d when t.lag_warn_frames > 0 ->
    let last = Durable.last_lsn d in
    locked t.pmutex (fun () ->
        Hashtbl.iter
          (fun id p ->
            let lag = Stdlib.max 0 (last - p.p_acked) in
            if lag >= 4 * t.lag_warn_frames then
              add "peer-lag" `Critical
                [ ("replica", Events.S id); ("lag_frames", Events.I lag) ]
            else if lag >= t.lag_warn_frames then
              add "peer-lag" `Degraded
                [ ("replica", Events.S id); ("lag_frames", Events.I lag) ])
          t.peers)
  | _ -> ());
  List.rev !reasons

let health_level reasons =
  if List.exists (fun (_, l, _) -> l = `Critical) reasons then `Critical
  else if reasons <> [] then `Degraded
  else `Ok

let health_level_string = function
  | `Ok -> "ok"
  | `Degraded -> "degraded"
  | `Critical -> "critical"

let health_status t = health_level_string (health_level (health_reasons t))

let health_json t =
  let reasons = health_reasons t in
  let reason_json (code, level, data) =
    "{"
    ^ String.concat ","
        (Printf.sprintf "\"code\":\"%s\"" code
         :: Printf.sprintf "\"level\":\"%s\""
              (health_level_string (level :> [ `Ok | `Degraded | `Critical ]))
         :: List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":%s" (Xqb_obs.Json.escape k) (field_json v))
              data)
    ^ "}"
  in
  Printf.sprintf "{\"status\":\"%s\",\"reasons\":[%s]}"
    (health_level_string (health_level reasons))
    (String.concat "," (List.map reason_json reasons))

(* The monitor thread: poll the stall signals and the health status,
   emitting an event on each rising edge / transition (the continuous
   values are already visible as gauges; events capture the changes).
   Spawned only when telemetry is on. *)
let monitor_loop t () =
  let prev_health = ref "ok" in
  let prev_apply = ref false and prev_fsync = ref false and prev_queue = ref false in
  let edge prev now kind data =
    if now && not !prev then Events.critical t.events ~kind (data ());
    prev := now
  in
  while not t.stopping do
    (* 250ms tick: 4x finer than the 1s stall bound it polices, and
       coarse enough that polling (3 window snapshots + WAL probes)
       stays invisible in the request path even on one core *)
    Thread.delay 0.25;
    if not t.stopping then begin
      (* drain the queued Debug sink backlog off the commit hot path *)
      Events.pump t.events;
      edge prev_apply
        (Scheduler.apply_held_ns t.sched > t.stall_ns)
        "stall.apply"
        (fun () ->
          [ ( "held_ms",
              Events.F (float_of_int (Scheduler.apply_held_ns t.sched) /. 1e6) )
          ]);
      edge prev_fsync
        (match t.durable with
        | Some d -> Durable.fsync_in_progress_ns d > t.stall_ns
        | None -> false)
        "stall.fsync"
        (fun () ->
          [ ( "in_progress_ms",
              Events.F
                (match t.durable with
                | Some d -> float_of_int (Durable.fsync_in_progress_ns d) /. 1e6
                | None -> 0.) )
          ]);
      edge prev_queue
        (Scheduler.oldest_queued_age_ns t.sched > t.stall_ns)
        "stall.queue"
        (fun () ->
          [ ( "oldest_queued_ms",
              Events.F
                (float_of_int (Scheduler.oldest_queued_age_ns t.sched) /. 1e6) )
          ]);
      let reasons = health_reasons t in
      let status = health_level_string (health_level reasons) in
      if status <> !prev_health then begin
        let log =
          match health_level reasons with
          | `Ok -> Events.info
          | `Degraded -> Events.warn
          | `Critical -> Events.error
        in
        log t.events ~kind:"health.state"
          ([ ("from", Events.S !prev_health); ("to", Events.S status) ]
          @ List.map (fun (code, _, _) -> ("reason", Events.S code)) reasons);
        prev_health := status
      end
    end
  done

(* -- the crash flight recorder --------------------------------------

   The events sink is flushed per event, so its tail survives any
   crash the page cache survives (SIGKILL included — no handler gets
   to run, but the already-flushed lines are in the file). On the
   next durable boot, an events.jsonl whose last record is not
   lifecycle.shutdown means the previous process died unclean: its
   events are spliced verbatim into flight-<ts>.json next to what
   recovery just reconstructed, giving the post-mortem both "what the
   service was doing" and "what the disk still had". The sink is
   consumed either way so each run's log starts fresh. *)

let flight_splice_cap = 512

let events_sink_name = "events.jsonl"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Debug sink lines are buffered (see Events), so a SIGKILL can tear
   the file mid-line; splicing a torn line into flight-<ts>.json would
   make the whole dump unparseable. An intact line is one full event
   object: starts with '{', ends with '}'. *)
let intact_line l =
  let n = String.length l in
  n >= 2 && l.[0] = '{' && l.[n - 1] = '}'

let detect_unclean_shutdown ~dir (recovered : Durable.recovered option) =
  let path = Filename.concat dir events_sink_name in
  if not (Sys.file_exists path) then None
  else begin
    let lines =
      List.filter intact_line (try read_lines path with Sys_error _ -> [])
    in
    let clean =
      match List.rev lines with
      | [] -> true
      | last :: _ -> contains_substring last "\"kind\":\"lifecycle.shutdown\""
    in
    (try Sys.remove path with Sys_error _ -> ());
    if clean then None
    else begin
      let wall = Unix.gettimeofday () in
      let flight =
        Filename.concat dir
          (* ms + pid so rapid restarts never overwrite a prior dump *)
          (Printf.sprintf "flight-%d-%d.json"
             (int_of_float (wall *. 1000.))
             (Unix.getpid ()))
      in
      let dropped = Stdlib.max 0 (List.length lines - flight_splice_cap) in
      let kept = List.filteri (fun i _ -> i >= dropped) lines in
      let recovery_json =
        match recovered with
        | None -> "null"
        | Some r ->
          Printf.sprintf
            "{\"lsn\":%d,\"snapshot_lsn\":%d,\"wal_frames\":%d,\"truncated_bytes\":%d}"
            r.Durable.lsn r.Durable.snapshot_lsn r.Durable.wal_frames
            r.Durable.truncated_bytes
      in
      let content =
        Printf.sprintf
          "{\"reason\":\"unclean-shutdown\",\"detected_wall_s\":%.3f,\"events_dropped\":%d,\"recovery\":%s,\"events\":[%s]}"
          wall dropped recovery_json (String.concat "," kept)
      in
      match open_out flight with
      | oc ->
        output_string oc content;
        output_char oc '\n';
        close_out_noerr oc;
        Some flight
      | exception Sys_error _ -> None
    end
  end

let create ?(domains = 4) ?(cache_capacity = 128) ?(seed = 0x5eed) ?deadline_ms
    ?fuel ?max_delta ?max_queue ?(tracing = false) ?(slow_apply_ms = 10)
    ?durability ?(replica = false) ?replica_of ?(footprint_scheduling = true)
    ?slo_p99_ms ?slo_err_pct ?(trace_ring = 32) ?(stall_ms = 1000)
    ?(fsync_warn_ms = 100) ?(lag_warn_frames = 256) ?(telemetry = true)
    ?events_cap ?profile_hz ?(gc_pause_warn_ms = 50) () =
  (match profile_hz with
  | Some hz when hz <= 0 -> invalid_arg "Service.create: profile_hz <= 0"
  | _ -> ());
  if gc_pause_warn_ms <= 0 then
    invalid_arg "Service.create: gc_pause_warn_ms <= 0";
  let replica = replica || replica_of <> None in
  if replica && durability <> None then
    failwith "a replica has no WAL of its own: --replica-of excludes --data-dir";
  if trace_ring < 1 then invalid_arg "Service.create: trace_ring < 1";
  (* Durable boot: recover the store (snapshot + WAL tail replay),
     hang the catalog off it, and (re)start the in-memory mutation
     journal — everything replayed is already on disk, so the WAL
     appender's cursor starts at seq 0 of a fresh journal. *)
  let durable, catalog, recovered =
    match durability with
    | None -> (None, Catalog.create (), None)
    | Some cfg ->
      let d, (rec_ : Durable.recovered) = Durable.recover cfg in
      let catalog = Catalog.create ~store:rec_.store () in
      List.iter
        (fun (uri, root, bytes) -> Catalog.register catalog ~uri ~root ~bytes)
        rec_.docs;
      Xqb_store.Store.journal_start rec_.store;
      (Some d, catalog, Some rec_)
  in
  let data_dir =
    Option.map (fun (cfg : Durable.config) -> cfg.Durable.dir) durability
  in
  (* Flight recorder, boot half: inspect (and consume) the previous
     run's event sink before this run opens its own. *)
  let flight =
    match data_dir with
    | Some dir when telemetry -> detect_unclean_shutdown ~dir recovered
    | _ -> None
  in
  let events =
    if telemetry then
      Events.create ?cap:events_cap
        ?sink_path:(Option.map (fun d -> Filename.concat d events_sink_name) data_dir)
        ()
    else Events.disabled ()
  in
  let repl =
    if not replica then None
    else
      Some
        {
          r_leader = Option.value replica_of ~default:"";
          rm = Mutex.create ();
          r_received_lsn = 0;
          r_applied_lsn = 0;
          r_leader_lsn = 0;
          r_pending = [];
          r_frames = 0;
          r_status = "idle";
          r_last_apply = 0.;
          r_thread = None;
          r_sock = None;
          r_stop = false;
        }
  in
  let t =
    {
      catalog;
      cache = Plan_cache.create ~capacity:cache_capacity ();
      sched = Scheduler.create ~domains ?max_queue ();
      metrics = Metrics.create ~windows:telemetry ?slo_p99_ms ?slo_err_pct ();
      sessions = Hashtbl.create 16;
      smutex = Mutex.create ();
      next_sid = 1;
      seed;
      deadline_ms;
      fuel;
      max_delta;
      footprints = footprint_scheduling;
      jobs = Hashtbl.create 16;
      jmutex = Mutex.create ();
      next_jid = 1;
      watchdog = None;
      stopping = false;
      tracing;
      tr_mutex = Mutex.create ();
      recent_traces = [];
      trace_cap = trace_ring;
      trace_evictions = 0;
      events;
      data_dir;
      stall_ns = stall_ms * 1_000_000;
      fsync_warn_ns = fsync_warn_ms * 1_000_000;
      lag_warn_frames;
      monitor = None;
      peers = Hashtbl.create 4;
      pmutex = Mutex.create ();
      slow_ns = slow_apply_ms * 1_000_000;
      sl_mutex = Mutex.create ();
      slowlog = [];
      last_delta = None;
      durable;
      wal_seq = 0;
      commit_seq = 0;
      read_only = replica;
      repl;
      edge_src = None;
      profile_hz = Option.value profile_hz ~default:97;
      profile_owned = profile_hz <> None;
      gc_tel = telemetry;
      gc_pause_warn_ns = gc_pause_warn_ms * 1_000_000;
      boot_wall = Unix.gettimeofday ();
    }
  in
  (* GC telemetry rides on the telemetry switch: the Runtime_events
     consumer is a process-wide refcounted singleton, released in
     [shutdown]. *)
  if t.gc_tel then Xqb_obs.Gc_tel.start ();
  (* --profile-hz arms the continuous profiler at boot; a service
     created without it still honors wire PROFILE START. *)
  (match profile_hz with
  | Some hz ->
    Xqb_obs.Profile.configure ~hz;
    ignore (Xqb_obs.Profile.start ~hz ())
  | None -> ());
  if deadline_ms <> None then t.watchdog <- Some (Thread.create (watchdog_loop t) ());
  Events.info events ~kind:"lifecycle.boot"
    [
      ("read_only", Events.B replica);
      ("domains", Events.I domains);
      ("footprint_scheduling", Events.B footprint_scheduling);
      ("durable", Events.B (durable <> None));
    ];
  (match recovered with
  | Some r ->
    Events.info events ~kind:"lifecycle.recovery"
      [
        ("lsn", Events.I r.Durable.lsn);
        ("snapshot_lsn", Events.I r.Durable.snapshot_lsn);
        ("wal_frames", Events.I r.Durable.wal_frames);
        ("truncated_bytes", Events.I r.Durable.truncated_bytes);
      ]
  | None -> ());
  (match flight with
  | Some path ->
    Events.warn events ~kind:"lifecycle.unclean-shutdown"
      [ ("flight", Events.S path) ]
  | None -> ());
  if Events.enabled events then
    t.monitor <- Some (Thread.create (monitor_loop t) ());
  t

(* Path of the flight-recorder dump the boot wrote after detecting an
   unclean shutdown, surfaced from the unclean-shutdown event. *)
let boot_flight t =
  match Events.tail ~level:Events.Warn t.events 64 with
  | events ->
    List.find_map
      (fun (e : Events.event) ->
        if e.Events.kind = "lifecycle.unclean-shutdown" then
          List.find_map
            (function "flight", Events.S p -> Some p | _ -> None)
            e.Events.data
        else None)
      events

let catalog t = t.catalog
let scheduler t = t.sched
let metrics t = t.metrics
let read_only t = t.read_only
let events t = t.events
let durability_json t = Option.map Durable.stats_json t.durable

let events_json ?level t n =
  Events.events_json (Events.tail ?level t.events n)

(* Fault injection for tests (no-op without --data-dir). *)
let inject_fsync_delay t secs =
  match t.durable with
  | Some d -> Durable.inject_fsync_delay d secs
  | None -> ()

(* Deterministic gc-pause health (same pattern as
   [inject_fsync_delay]): floor the telemetry's reported 10s p99 at
   [ms] until cleared. No-op when telemetry is off. *)
let inject_gc_pause t ms =
  if t.gc_tel then Xqb_obs.Gc_tel.inject_pause ~ns:(ms * 1_000_000)

let clear_gc_pause_injection t =
  if t.gc_tel then Xqb_obs.Gc_tel.clear_injected ()

(* -- the continuous profiler (wire PROFILE) ------------------------- *)

let profile_command t (cmd : [ `Start | `Stop | `Dump | `Dump_json | `Stat ])
    =
  match cmd with
  | `Start ->
    if Xqb_obs.Profile.start ~hz:t.profile_hz () then begin
      Events.info t.events ~kind:"profile.start"
        [ ("hz", Events.I t.profile_hz) ];
      Printf.sprintf "started at %d Hz" t.profile_hz
    end
    else Printf.sprintf "already running at %d Hz" (Xqb_obs.Profile.hz ())
  | `Stop ->
    if Xqb_obs.Profile.stop () then begin
      Events.info t.events ~kind:"profile.stop"
        [ ("samples", Events.I (Xqb_obs.Profile.samples ())) ];
      "stopped"
    end
    else "not running"
  | `Dump -> Xqb_obs.Profile.dump_folded ()
  | `Dump_json -> Xqb_obs.Profile.dump_json ()
  | `Stat -> Xqb_obs.Profile.stat_json ()

(* -- durability (leader side) --------------------------------------- *)

(* Append the in-memory journal tail to the WAL and, under the Always
   policy, block until durable — this is the acknowledgment barrier:
   it runs after the snap applied but before the client sees OK, so
   recovery reproduces every acknowledged commit. Caller holds a ⊤
   footprint (exclusive jobs, loads, checkpoints), which excludes
   every concurrent apply — so [wal_seq] is stable. The concurrent-
   writer path commits through [writer_apply_wrap] instead. *)
(* wal.commit events are emitted only after the durability barrier:
   the flight recorder's consistency check relies on every logged
   lsn being recoverable under fsync=always. At full load that is
   one Debug record per committed write — tens of thousands a second
   — so sample 1-in-32 (always the first after boot): the sampled
   lsns carry the same invariant, and the commits in between are
   visible as xqbang_wal_frames counters rather than events. The
   counter read/increment may race between concurrent writers; the
   worst case is an extra or a skipped sample. *)
let commit_event_mask = 31

let log_commit t lsn data =
  let n = t.commit_seq in
  t.commit_seq <- n + 1;
  if n land commit_event_mask = 0 then
    Events.debug t.events ~kind:"wal.commit" (("lsn", Events.I lsn) :: data)

let durable_commit t =
  match t.durable with
  | None -> ()
  | Some d ->
    Xqb_obs.Profile.with_phase "wal" @@ fun () ->
    let store = Catalog.store t.catalog in
    let entries = Xqb_store.Store.journal_entries_from store t.wal_seq in
    if entries <> [] then begin
      t.wal_seq <- t.wal_seq + List.length entries;
      let lsn = Durable.commit_entries d entries in
      log_commit t lsn [ ("entries", Events.I (List.length entries)) ]
    end

(* After a checkpoint the snapshot covers the whole journal: restart
   it so the in-memory list (and the seq counter feeding [wal_seq])
   doesn't grow without bound. Write lock held. *)
let after_checkpoint t =
  Xqb_store.Store.journal_start (Catalog.store t.catalog);
  t.wal_seq <- 0

let durable_maybe_checkpoint t =
  match t.durable with
  | None -> ()
  | Some d -> (
    match
      Durable.maybe_checkpoint d ~docs:(Catalog.roots t.catalog)
        (Catalog.store t.catalog)
    with
    | Some lsn ->
      after_checkpoint t;
      Events.info t.events ~kind:"wal.checkpoint" [ ("lsn", Events.I lsn) ]
    | None -> ())

(* The per-write-job durability hook: flush the journal tail (even on
   failure — an aborted span is a no-op on replay but keeps the audit
   trail complete), then maybe checkpoint. A disk error here surfaces
   as the job's error: the in-memory state has committed, but the
   client is never acknowledged a write the disk didn't take. *)
let durable_publish t =
  durable_commit t;
  durable_maybe_checkpoint t

(* The concurrent-writer commit path, installed per-job as the
   context's [apply_wrap]: each top-level snap's ∆ applies under the
   scheduler's global apply mutex — journal transaction spans stay
   contiguous and WAL byte order equals apply order — with the WAL
   append in the same critical section, and the [Always]-policy
   durability wait *outside* it, so writers blocked on fsync(2) share
   one group-commit leader pass instead of serializing full syncs.
   The apply runs under [Store.transactionally]: a conflict (§4.1
   R1–R7) or any other apply-time failure rolls the span back before
   its entries reach the WAL. Evaluation needs no rollback — it
   never mutates the store (§3.3); its only traces are fresh node
   allocations, unreachable from any document.

   No checkpoint here: a checkpoint resets the in-memory journal,
   which would orphan the allocation entries of writers still
   mid-evaluation. Checkpoints run only under a ⊤ footprint (loads,
   Effecting jobs, CHECKPOINT), where nothing else is in flight. *)
let writer_apply_wrap t apply =
  let pending =
    Scheduler.with_apply t.sched (fun () ->
        let store = Catalog.store t.catalog in
        Xqb_store.Store.transactionally store apply;
        match t.durable with
        | None -> None
        | Some d ->
          Xqb_obs.Profile.with_phase "wal" @@ fun () ->
          let entries = Xqb_store.Store.journal_entries_from store t.wal_seq in
          if entries = [] then None
          else begin
            t.wal_seq <- t.wal_seq + List.length entries;
            Some (d, Durable.append_entries d entries)
          end)
  in
  match pending with
  | Some (d, lsn) ->
    Xqb_obs.Profile.with_phase "wal" (fun () -> Durable.wait_durable d lsn);
    log_commit t lsn []
  | None -> ()

let checkpoint_now t =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d ->
    Scheduler.with_write t.sched (fun () ->
        durable_commit t;
        let lsn =
          Durable.checkpoint d ~docs:(Catalog.roots t.catalog)
            (Catalog.store t.catalog)
        in
        after_checkpoint t;
        Events.info t.events ~kind:"wal.checkpoint"
          [ ("lsn", Events.I lsn); ("forced", Events.B true) ];
        Ok lsn)

(* Committed WAL frames for a replica, as one concatenated blob. A
   [replica_id] (the optional third SHIP argument) updates the
   leader's per-peer lag table: asking from [from_lsn] acknowledges
   everything below it. *)
let note_peer t id ~acked ~shipped =
  locked t.pmutex (fun () ->
      let p =
        match Hashtbl.find_opt t.peers id with
        | Some p -> p
        | None ->
          let p = { p_acked = 0; p_shipped = 0; p_last_seen = 0. } in
          Hashtbl.replace t.peers id p;
          Events.info t.events ~kind:"replica.peer"
            [ ("id", Events.S id); ("from_lsn", Events.I (acked + 1)) ];
          p
      in
      p.p_acked <- Stdlib.max p.p_acked acked;
      p.p_shipped <- Stdlib.max p.p_shipped shipped;
      p.p_last_seen <- Unix.gettimeofday ())

let ship_frames ?replica_id t ~from_lsn ~max =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d -> (
    match Durable.ship d ~from_lsn ~max with
    | Ok (last, frames) ->
      (match replica_id with
      | Some id -> note_peer t id ~acked:(Stdlib.max 0 (from_lsn - 1)) ~shipped:last
      | None -> ());
      Ok (last, String.concat "" frames)
    | Error `Too_old ->
      Error "too-old: frames before the last checkpoint are gone; re-bootstrap from SNAPSHOT")

let peers_json t =
  let last = match t.durable with Some d -> Durable.last_lsn d | None -> 0 in
  let now = Unix.gettimeofday () in
  let entries =
    locked t.pmutex (fun () ->
        Hashtbl.fold
          (fun id p acc ->
            Printf.sprintf
              "{\"id\":\"%s\",\"acked_lsn\":%d,\"shipped_lsn\":%d,\"lag_frames\":%d,\"last_seen_age_s\":%.3f}"
              (Metrics.json_escape id) p.p_acked p.p_shipped
              (Stdlib.max 0 (last - p.p_acked))
              (now -. p.p_last_seen)
            :: acc)
          t.peers [])
  in
  "[" ^ String.concat "," entries ^ "]"

let snapshot_blob t =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d ->
    Ok
      (Scheduler.with_write t.sched (fun () ->
           durable_commit t;
           Durable.snapshot_blob d ~docs:(Catalog.roots t.catalog)
             (Catalog.store t.catalog)))

(* -- replication (replica side) ------------------------------------- *)

let replica_bootstrap t blob =
  match t.repl with
  | None -> Error "not a replica"
  | Some r -> (
    let store = Catalog.store t.catalog in
    if Xqb_store.Store.node_count store > 0 then
      Error "replica already holds data; bootstrap needs a fresh store"
    else
      match
        Scheduler.with_write t.sched (fun () -> Wcodec.restore store blob)
      with
      | lsn, docs ->
        List.iter
          (fun (uri, root, bytes) ->
            Catalog.register t.catalog ~uri ~root ~bytes)
          docs;
        locked r.rm (fun () ->
            r.r_received_lsn <- lsn;
            r.r_applied_lsn <- lsn;
            r.r_leader_lsn <- max r.r_leader_lsn lsn;
            r.r_last_apply <- Unix.gettimeofday ();
            r.r_status <- "bootstrapped");
        Ok lsn
      | exception Wcodec.Corrupt msg -> Error ("corrupt snapshot: " ^ msg))

(* Apply a batch of shipped frames. Already-seen LSNs are skipped
   (idempotent re-delivery); entries buffer until their transaction
   span completes, then apply behind the write lock so concurrent
   read queries never observe a half-applied update. Returns the
   number of frames applied (entries + doc registrations). *)
let replica_ingest t ~leader_lsn blob =
  match t.repl with
  | None -> Error "not a replica"
  | Some r ->
    let frames, valid = Wcodec.scan blob in
    if valid <> String.length blob then Error "corrupt frame batch"
    else
      locked r.rm (fun () ->
          r.r_leader_lsn <- max r.r_leader_lsn leader_lsn;
          let fresh =
            List.filter (fun (lsn, _, _) -> lsn > r.r_received_lsn) frames
          in
          let applied = ref 0 in
          let pending_rev = ref (List.rev r.r_pending) in
          let flush () =
            let pairs = List.rev !pending_rev in
            let complete, _ =
              Xqb_store.Journal.split_complete
                (List.map (fun (_, e, _) -> e) pairs)
            in
            let n = List.length complete in
            if n > 0 then begin
              Scheduler.with_write t.sched (fun () ->
                  Xqb_store.Journal.apply (Catalog.store t.catalog) complete);
              List.iteri
                (fun i (lsn, _, _) ->
                  if i < n then r.r_applied_lsn <- max r.r_applied_lsn lsn)
                pairs;
              r.r_frames <- r.r_frames + n;
              r.r_last_apply <- Unix.gettimeofday ();
              applied := !applied + n;
              pending_rev := List.rev (List.filteri (fun i _ -> i >= n) pairs)
            end
          in
          List.iter
            (fun (lsn, record, size) ->
              r.r_received_lsn <- lsn;
              match record with
              | Wcodec.R_entry e -> pending_rev := (lsn, e, size) :: !pending_rev
              | Wcodec.R_doc { uri; root; bytes } ->
                (* the leader appends the registration only after the
                   load's span committed, so the buffer is complete *)
                flush ();
                Catalog.register t.catalog ~uri ~root ~bytes;
                r.r_applied_lsn <- max r.r_applied_lsn lsn;
                r.r_frames <- r.r_frames + 1;
                r.r_last_apply <- Unix.gettimeofday ();
                incr applied)
            fresh;
          flush ();
          r.r_pending <- List.rev !pending_rev;
          r.r_status <- "streaming";
          Ok !applied)

(* Replica-side lag, three units: frames behind the leader's head,
   bytes received-but-not-applied (a buffered half span), and
   milliseconds since the last apply while behind. *)
let replica_lag r =
  let lag = max 0 (r.r_leader_lsn - r.r_applied_lsn) in
  let lag_bytes =
    List.fold_left (fun acc (_, _, size) -> acc + size) 0 r.r_pending
  in
  let lag_ms =
    if lag > 0 && r.r_last_apply > 0. then
      (Unix.gettimeofday () -. r.r_last_apply) *. 1e3
    else 0.
  in
  (lag, lag_bytes, lag_ms)

let replica_stat_json t =
  match t.repl with
  | None ->
    (* leader side: the per-peer table SHIP ids populate *)
    Printf.sprintf "{\"replica\":false,\"last_lsn\":%d,\"peers\":%s}"
      (match t.durable with Some d -> Durable.last_lsn d | None -> 0)
      (peers_json t)
  | Some r ->
    locked r.rm (fun () ->
        let lag, lag_bytes, lag_ms = replica_lag r in
        Printf.sprintf
          "{\"replica\":true,\"leader\":\"%s\",\"status\":\"%s\",\"applied_lsn\":%d,\"received_lsn\":%d,\"leader_lsn\":%d,\"lag\":%d,\"lag_bytes\":%d,\"lag_ms\":%.0f,\"frames_applied\":%d,\"pending_entries\":%d,\"last_apply_age_s\":%s}"
          (Metrics.json_escape r.r_leader)
          (Metrics.json_escape r.r_status)
          r.r_applied_lsn r.r_received_lsn r.r_leader_lsn lag lag_bytes lag_ms
          r.r_frames
          (List.length r.r_pending)
          (if r.r_last_apply = 0. then "null"
           else Printf.sprintf "%.3f" (Unix.gettimeofday () -. r.r_last_apply)))

(* [JOURNAL STAT]: in-memory journal length + the canonical store
   digest — the cross-node consistency check (leader, replicas and a
   recovered store all agree on it). Takes the read lock so the
   digest never observes a half-applied update. *)
let journal_stat_json t =
  (* the replica mutex is taken before the scheduler lock elsewhere
     (ingest holds [rm] across its write-side apply), so read it
     outside the read lock to keep the order consistent *)
  let lsn =
    match t.durable with
    | Some d -> Durable.last_lsn d
    | None -> (
      match t.repl with
      | Some r -> locked r.rm (fun () -> r.r_applied_lsn)
      | None -> 0)
  in
  Scheduler.with_read t.sched (fun () ->
      let store = Catalog.store t.catalog in
      Printf.sprintf
        "{\"recording\":%b,\"length\":%d,\"nodes\":%d,\"digest\":\"%s\",\"lsn\":%d}"
        (Xqb_store.Store.journal_active store)
        (Xqb_store.Store.journal_length store)
        (Xqb_store.Store.node_count store)
        (Wcodec.store_digest_hex store)
        lsn)

(* -- the replication client ----------------------------------------- *)

(* Poll loop behind `serve --replica-of HOST:PORT`: connect to the
   leader over the ordinary line protocol, bootstrap from a SNAPSHOT
   blob when the local store is empty, then SHIP committed frames
   forever (blobs travel base64 on the wire). Connection failures
   back off and reconnect; a `too-old` reply (the leader checkpointed
   past this replica's position) is terminal — an already-populated
   store cannot re-bootstrap, the operator restarts the replica. *)

let repl_poll_s = 0.02
let repl_batch = 512

exception Repl_stale

let parse_reply line =
  if String.length line >= 3 && String.sub line 0 3 = "OK " then
    Ok (Protocol.unescape (String.sub line 3 (String.length line - 3)))
  else if line = "OK" then Ok ""
  else Error line

let replication_loop t r host port () =
  let resolve () =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith ("cannot resolve host " ^ host))
  in
  let session () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        locked r.rm (fun () -> r.r_sock <- None);
        try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock (Unix.ADDR_INET (resolve (), port));
        locked r.rm (fun () ->
            r.r_sock <- Some sock;
            r.r_status <- "connected");
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        let rpc line =
          output_string oc line;
          output_char oc '\n';
          flush oc;
          parse_reply (input_line ic)
        in
        (if
           locked r.rm (fun () -> r.r_received_lsn) = 0
           && Xqb_store.Store.node_count (Catalog.store t.catalog) = 0
         then
           match rpc "SNAPSHOT" with
           | Ok payload -> (
             match replica_bootstrap t (Xqb_wal.B64.decode payload) with
             | Ok lsn ->
               Events.info t.events ~kind:"replica.bootstrap"
                 [ ("lsn", Events.I lsn) ]
             | Error e -> failwith e)
           | Error e -> failwith ("SNAPSHOT: " ^ e));
        (* the id lets the leader track this replica's shipped/acked
           position; host+pid is unique enough per poll loop *)
        let my_id = Printf.sprintf "r-%d" (Unix.getpid ()) in
        while not r.r_stop do
          let from = locked r.rm (fun () -> r.r_received_lsn + 1) in
          match rpc (Printf.sprintf "SHIP %d %d %s" from repl_batch my_id) with
          | Ok payload ->
            let leader_w, b64 =
              match String.index_opt payload ' ' with
              | None -> (payload, "")
              | Some i ->
                ( String.sub payload 0 i,
                  String.trim
                    (String.sub payload (i + 1) (String.length payload - i - 1))
                )
            in
            let leader_lsn =
              match int_of_string_opt leader_w with
              | Some l -> l
              | None -> failwith ("bad SHIP reply: " ^ payload)
            in
            if b64 = "" then begin
              locked r.rm (fun () ->
                  r.r_leader_lsn <- max r.r_leader_lsn leader_lsn;
                  if r.r_leader_lsn <= r.r_applied_lsn then
                    r.r_status <- "caught-up");
              Thread.delay repl_poll_s
            end
            else begin
              match replica_ingest t ~leader_lsn (Xqb_wal.B64.decode b64) with
              | Ok _ -> ()
              | Error e -> failwith e
            end
          | Error e ->
            let stale =
              (* "ERR too-old: ..." — substring match keeps the wire
                 format free to evolve *)
              let n = String.length e in
              let rec find i =
                i + 7 <= n && (String.sub e i 7 = "too-old" || find (i + 1))
              in
              find 0
            in
            if stale then raise Repl_stale else failwith ("SHIP: " ^ e)
        done)
  in
  let stale = ref false in
  while (not r.r_stop) && not !stale do
    try session () with
    | Repl_stale ->
      stale := true;
      Events.error t.events ~kind:"replica.stale"
        [ ("leader", Events.S r.r_leader) ];
      locked r.rm (fun () ->
          r.r_status <-
            "stale: leader checkpointed past this replica; restart it with an empty store")
    | e ->
      if not r.r_stop then begin
        Events.warn t.events ~kind:"replica.disconnect"
          [
            ("leader", Events.S r.r_leader);
            ("error", Events.S (Printexc.to_string e));
          ];
        locked r.rm (fun () ->
            r.r_status <- "disconnected: " ^ Printexc.to_string e);
        Thread.delay 0.3
      end
  done

(* Start the polling thread (serve does this right after [create]
   when --replica-of was given). No-op for manually-pumped replicas
   (tests drive {!replica_ingest} directly). *)
let start_replication t =
  match t.repl with
  | Some r when r.r_leader <> "" && r.r_thread = None ->
    let host, port =
      match String.rindex_opt r.r_leader ':' with
      | Some i -> (
        let h = String.sub r.r_leader 0 i in
        let p = String.sub r.r_leader (i + 1) (String.length r.r_leader - i - 1) in
        match int_of_string_opt p with
        | Some p when h <> "" -> (h, p)
        | _ ->
          failwith
            (Printf.sprintf "bad --replica-of %S (expected HOST:PORT)" r.r_leader))
      | None ->
        failwith
          (Printf.sprintf "bad --replica-of %S (expected HOST:PORT)" r.r_leader)
    in
    r.r_thread <- Some (Thread.create (replication_loop t r host port) ())
  | _ -> ()

(* -- sessions ------------------------------------------------------- *)

let open_session t =
  locked t.smutex (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let engine =
        Engine.create ~seed:(t.seed + sid) ~store:(Catalog.store t.catalog) ()
      in
      (* fn:doc falls back to the shared catalog (lookup only) *)
      (Engine.context engine).Core.Context.doc_lookup <-
        Some (fun uri -> Catalog.find t.catalog uri);
      (* applied-∆ accounting; only non-empty ∆s are interesting *)
      (Engine.context engine).Core.Context.on_apply <-
        Some
          (fun delta _mode ->
            if delta <> [] then Metrics.record_delta t.metrics delta);
      Hashtbl.replace t.sessions sid
        { sid; engine; slock = Mutex.create (); docs_held = [] };
      sid)

let find_session t sid =
  match locked t.smutex (fun () -> Hashtbl.find_opt t.sessions sid) with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown session %d" sid)

let close_session t sid =
  match locked t.smutex (fun () ->
      let s = Hashtbl.find_opt t.sessions sid in
      Hashtbl.remove t.sessions sid;
      s)
  with
  | None -> ()
  | Some s ->
    locked s.slock (fun () ->
        List.iter (Catalog.release t.catalog) s.docs_held;
        s.docs_held <- [])

let session_count t = locked t.smutex (fun () -> Hashtbl.length t.sessions)

(* Load a document into the shared catalog (under the scheduler's
   write lock — loading parses XML into the shared store) and attach
   it to the session: registered for [fn:doc(uri)] and bound to
   [$uri]. Load-once: a second session attaching the same URI reuses
   the resident tree. *)
let load_document t sid ~uri xml =
  let s = find_session t sid in
  let root =
    match Catalog.acquire t.catalog uri with
    | Some root -> root
    | None when t.read_only ->
      failwith
        (Printf.sprintf
           "read-only replica: %S is not resident (documents replicate from the leader)"
           uri)
    | None ->
      Scheduler.with_write t.sched (fun () ->
          (* transactional so the load's journal entries form one
             span: recovery and replicas either get the whole
             document or none of it (and a parse failure rolls the
             partially-built tree back) *)
          let root =
            Xqb_store.Store.transactionally (Catalog.store t.catalog)
              (fun () -> Catalog.load t.catalog ~uri xml)
          in
          ignore (Catalog.acquire t.catalog uri);
          (match t.durable with
          | Some d ->
            durable_commit t;
            Durable.commit_doc d ~uri ~root ~bytes:(String.length xml);
            durable_maybe_checkpoint t
          | None -> ());
          root)
  in
  locked s.slock (fun () ->
      if not (List.mem uri s.docs_held) then s.docs_held <- uri :: s.docs_held;
      Core.Context.register_doc (Engine.context s.engine) uri root;
      Engine.bind_node s.engine uri root)

(* -- query submission ----------------------------------------------- *)

let error_message e = (Service_error.classify e).Service_error.message

(* Prepared plan for [src]: cache hit or full compile. On a hit the
   program's function declarations are still installed into the
   session (cheap), so cross-session hits behave like a local
   compile. Caller holds the session lock. *)
let prepare t s src =
  let key = Plan_cache.normalize_key src in
  match Plan_cache.find t.cache key with
  | Some plan ->
    (match (Engine.context s.engine).Core.Context.tracer with
    | Some tr -> Trace.instant tr "plan.cache.hit"
    | None -> ());
    Engine.install_functions s.engine plan.compiled;
    plan
  | None ->
    let compiled = Engine.compile s.engine src in
    (* host-bound free variables that name catalog documents: the
       service binds every loaded document to [$uri], so a variable
       that is a catalog URI *is* that document's root. Anything else
       widens to "any document" inside the analysis. *)
    let var_docs v = if Catalog.find t.catalog v <> None then Some v else None in
    let plan =
      {
        compiled;
        purity = Engine.body_purity compiled;
        parallel = Engine.parallel_safe compiled;
        footprint = Engine.footprint ~var_docs compiled;
      }
    in
    Plan_cache.add t.cache key plan;
    plan

(* -- the in-flight registry ----------------------------------------- *)

let register_job t sid ~deadline ~cancel ~started src =
  locked t.jmutex (fun () ->
      let jid = t.next_jid in
      t.next_jid <- jid + 1;
      let src =
        if String.length src <= 120 then src else String.sub src 0 120 ^ "…"
      in
      Hashtbl.replace t.jobs jid
        { jid; jsid = sid; cancel; started; job_deadline = deadline; src };
      jid)

let unregister_job t jid = locked t.jmutex (fun () -> Hashtbl.remove t.jobs jid)

(* Request cancellation of an in-flight job. True if the job was
   found (still queued or running); the job itself observes the
   token at its next budget poll and fails with [cancelled]. *)
let cancel t jid =
  match locked t.jmutex (fun () -> Hashtbl.find_opt t.jobs jid) with
  | None -> false
  | Some j ->
    Budget.request j.cancel Budget.Cancelled;
    true

let inflight_count t = locked t.jmutex (fun () -> Hashtbl.length t.jobs)

(* -- the recent-trace ring ------------------------------------------ *)

let push_trace t jid tr =
  locked t.tr_mutex (fun () ->
      let others = List.filter (fun (j, _) -> j <> jid) t.recent_traces in
      let keep = List.filteri (fun i _ -> i < t.trace_cap - 1) others in
      t.trace_evictions <-
        t.trace_evictions + (List.length others - List.length keep);
      t.recent_traces <- (jid, tr) :: keep)

(* (occupancy, capacity, evictions since boot) — the ring gauges. *)
let trace_ring_stats t =
  locked t.tr_mutex (fun () ->
      (List.length t.recent_traces, t.trace_cap, t.trace_evictions))

(* Chrome trace-event JSON for job [jid], or the most recent traced
   job when [jid] is [None]. *)
let trace_json t jid =
  locked t.tr_mutex (fun () ->
      match jid with
      | Some j ->
        Option.map
          (fun tr -> (j, Trace.to_chrome_json tr))
          (List.assoc_opt j t.recent_traces)
      | None -> (
        match t.recent_traces with
        | (j, tr) :: _ -> Some (j, Trace.to_chrome_json tr)
        | [] -> None))

(* -- effect observability ------------------------------------------- *)

(* Rendered ∆-statistics JSON for one write-side job: requests by
   kind, snap-depth histogram, conflicts checked, apply-phase wall
   time. This is the wire DELTA payload. *)
let delta_stats_json ~jid ~apply_ns (st : Core.Update.stats) =
  Printf.sprintf
    "{\"jid\":%d,\"snaps\":%d,\"requests\":{\"insert\":%d,\"delete\":%d,\"rename\":%d,\"set_value\":%d},\"total_requests\":%d,\"conflicts_checked\":%d,\"max_snap_depth\":%d,\"snap_depth_hist\":[%s],\"apply_ns\":%d}"
    jid st.Core.Update.snaps st.Core.Update.inserts st.Core.Update.deletes
    st.Core.Update.renames st.Core.Update.set_values
    (Core.Update.stats_requests st)
    st.Core.Update.conflicts_checked st.Core.Update.max_snap_depth
    (String.concat ","
       (Array.to_list (Array.map string_of_int st.Core.Update.depth_hist)))
    apply_ns

(* Called right after a write-side job finishes (session lock held):
   snapshot the job's ∆ statistics for the wire DELTA command, and
   ring-buffer a slow-effect entry when the apply phase crossed the
   threshold. *)
(* Per-job attribution bracket: GC pause delta (poll-lagged; short
   jobs read 0) and profiler samples by phase, captured around the
   job body for SLOWLOG and EXPLAIN ANALYZE. *)
let attribution_begin () =
  ( Xqb_obs.Gc_tel.total_pause_ns (),
    if Xqb_obs.Profile.running () then Some (Xqb_obs.Profile.phase_counts ())
    else None )

let attribution_end (gc0, ph0) =
  ( Stdlib.max 0 (Xqb_obs.Gc_tel.total_pause_ns () - gc0),
    match ph0 with
    | Some before ->
      Xqb_obs.Profile.diff_counts before (Xqb_obs.Profile.phase_counts ())
    | None -> [] )

(* EXPLAIN ANALYZE footer lines (after the Runner's own ddo/footprint
   footers): per-phase sample counts while the profiler runs, and the
   job's GC pause delta while telemetry is on. *)
let attribution_suffix t att =
  let gc_ns, samples = attribution_end att in
  let buf = Buffer.create 64 in
  if Xqb_obs.Profile.running () then begin
    Buffer.add_string buf "\n-- profile samples:";
    (match samples with
    | [] -> Buffer.add_string buf " none"
    | l ->
      List.iter
        (fun (k, n) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k n))
        l);
    Buffer.add_string buf (Printf.sprintf " (%d Hz)" (Xqb_obs.Profile.hz ()))
  end;
  if t.gc_tel && Xqb_obs.Gc_tel.enabled () then
    Buffer.add_string buf
      (Printf.sprintf "\n-- gc: pause_ms=%.2f" (float_of_int gc_ns /. 1e6));
  Buffer.contents buf

let note_effects t ~jid ~sid ~src ~trace ?(gc_ns = 0) ?(samples = []) ctx =
  let st = ctx.Core.Context.delta_stats in
  let apply_ns = ctx.Core.Context.apply_ns in
  let snaps = st.Core.Update.snaps in
  let requests = Core.Update.stats_requests st in
  let json = delta_stats_json ~jid ~apply_ns st in
  let slow = apply_ns >= t.slow_ns && snaps > 0 in
  locked t.sl_mutex (fun () ->
      t.last_delta <- Some json;
      if slow then begin
        let entry =
          {
            sl_jid = jid;
            sl_sid = sid;
            sl_src =
              (if String.length src <= 120 then src
               else String.sub src 0 120 ^ "…");
            sl_apply_ns = apply_ns;
            sl_snaps = snaps;
            sl_requests = requests;
            sl_trace = trace;
            sl_gc_ns = gc_ns;
            sl_samples = samples;
          }
        in
        t.slowlog <-
          entry :: List.filteri (fun i _ -> i < slowlog_cap - 1) t.slowlog
      end);
  if slow then
    Events.warn t.events ~kind:"query.slow"
      [
        ("jid", Events.I jid);
        ("apply_ms", Events.F (float_of_int apply_ns /. 1e6));
        ("snaps", Events.I snaps);
      ]

(* Last write-side job's ∆ statistics; [None] before any updating
   query ran. *)
let delta_json t = locked t.sl_mutex (fun () -> t.last_delta)

let slowlog_json t =
  let entries = locked t.sl_mutex (fun () -> t.slowlog) in
  "["
  ^ String.concat ","
      (List.map
         (fun e ->
           Printf.sprintf
             "{\"jid\":%d,\"sid\":%d,\"apply_ns\":%d,\"snaps\":%d,\"requests\":%d,\"gc_pause_ns\":%d,\"profile_samples\":{%s},\"trace\":%s,\"src\":\"%s\"}"
             e.sl_jid e.sl_sid e.sl_apply_ns e.sl_snaps e.sl_requests
             e.sl_gc_ns
             (String.concat ","
                (List.map
                   (fun (k, n) ->
                     Printf.sprintf "\"%s\":%d" (Metrics.json_escape k) n)
                   e.sl_samples))
             (match e.sl_trace with
             | Some id -> Printf.sprintf "\"%s\"" (Metrics.json_escape id)
             | None -> "null")
             (Metrics.json_escape e.sl_src))
         entries)
  ^ "]"

let slowlog_length t = locked t.sl_mutex (fun () -> List.length t.slowlog)

let inflight_json t =
  let now = Unix.gettimeofday () in
  let entries =
    locked t.jmutex (fun () ->
        Hashtbl.fold
          (fun _ j acc ->
            Printf.sprintf "{\"jid\":%d,\"sid\":%d,\"running_ms\":%.0f,\"src\":\"%s\"}"
              j.jid j.jsid
              ((now -. j.started) *. 1e3)
              (Metrics.json_escape j.src)
            :: acc)
          t.jobs [])
  in
  "[" ^ String.concat "," entries ^ "]"

(* -- submission ----------------------------------------------------- *)

(* Map a future's exception side into the structured taxonomy. *)
let await fut =
  match Scheduler.await fut with
  | Ok r -> r
  | Error e -> Error (Service_error.classify e)

(* Submit a query; returns the job id (usable with [cancel]) and a
   future resolving to the serialized result or a structured error.
   Parallel-safe programs run concurrently on the scheduler's read
   side against a fork of the session taken now; everything else
   serializes on the write side under [Store.transactionally], so a
   query killed by its budget leaves the store unchanged. *)
let submit_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  let t0 = Unix.gettimeofday () in
  Metrics.record_queue_depth t.metrics (Scheduler.queue_depth t.sched);
  (* One tracer per job. Installed on the session engine only while
     the session lock is held (prepare + fork); a read-side fork
     copies it, so spans recorded by the fork on a worker domain land
     in this job's trace without the session ever sharing a tracer
     between two jobs. *)
  let tr = if t.tracing then Some (Trace.create ()) else None in
  match
    locked s.slock (fun () ->
        Engine.with_tracer s.engine tr (fun () ->
            let plan = prepare t s src in
            let fork =
              if plan.parallel then Some (Engine.fork_read s.engine) else None
            in
            (plan, fork)))
  with
  | exception e ->
    Metrics.record_compile_error t.metrics;
    let err = Service_error.classify e in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  | _plan, None when t.read_only ->
    (* purity gate doubles as the replica's write fence: anything not
       statically parallel-safe could mutate the store *)
    let err =
      Service_error.classify
        (Failure
           "read-only replica: updating/effecting queries must run on the leader")
    in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  | plan, fork ->
    (* one deadline scale, one boundary: the budget's polls, the
       scheduler queue check and the watchdog all use the same
       absolute monotonic Clock ns derived from --deadline-ms right
       here — wall-clock steps (NTP, VM suspend) can neither expire a
       job early nor keep one alive. *)
    let deadline_ns =
      match t.deadline_ms with
      | None -> max_int
      | Some ms -> Clock.now_ns () + (ms * 1_000_000)
    in
    let budget =
      Budget.create
        ?deadline_ns:(if deadline_ns = max_int then None else Some deadline_ns)
        ?fuel:t.fuel ?max_delta:t.max_delta ()
    in
    let jid =
      register_job t sid ~deadline:deadline_ns
        ~cancel:(Budget.cancel_token budget) ~started:t0 src
    in
    let finish ok =
      let latency_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      Metrics.record_query t.metrics ~purity:plan.purity ~parallel:plan.parallel
        ~ok ~latency_ns;
      match tr with
      | Some tr ->
        (* fold the job's span totals into the per-phase latency
           histograms and keep the trace for the wire [TRACE] *)
        Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
        push_trace t jid tr
      | None -> ()
    in
    let job () =
      Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
      Metrics.job_begin t.metrics ~parallel:plan.parallel;
      Fun.protect
        ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:plan.parallel)
      @@ fun () ->
      match
        match fork with
        | Some feng ->
          (* read side: forked context, snap-free evaluation.
             [run_readonly] re-forks internally; the fork inherits
             the session budget we install here. *)
          Engine.with_budget feng (Some budget) (fun () ->
              let v = Engine.run_readonly feng plan.compiled in
              Engine.serialize_with (Catalog.store t.catalog) v)
        | None -> (
          (* write side: the session itself, full snap semantics.
             The job's ∆ statistics and apply-phase wall time are
             snapshotted for DELTA / the slow-effect log even when it
             fails.

             Two commit disciplines. Non-Effecting jobs (at most one
             top-level apply per snap-wrapped global/body) take the
             concurrent path: evaluation runs in parallel with every
             footprint-disjoint job, and each snap's apply + WAL
             append serializes under [writer_apply_wrap] — the
             durable acknowledgment barrier moves inside the wrap,
             before this future resolves. Effecting jobs (nested
             snaps) hold a ⊤ footprint, so they keep the old
             exclusive discipline: whole-job [transactionally] (a
             budget kill rolls back even mid-way through nested
             applies) and the inline durable flush + checkpoint after
             (on failure it still flushes the aborted span, but its
             own errors must not mask the job's). *)
          let concurrent =
            t.footprints && plan.purity <> Core.Static.Effecting
          in
          match
            locked s.slock (fun () ->
              let ctx = Engine.context s.engine in
              Core.Update.stats_reset ctx.Core.Context.delta_stats;
              ctx.Core.Context.apply_ns <- 0;
              let att = attribution_begin () in
              Fun.protect
                ~finally:(fun () ->
                  let gc_ns, samples = attribution_end att in
                  note_effects t ~jid ~sid ~src
                    ~trace:(Option.map Trace.id tr)
                    ~gc_ns ~samples ctx)
              @@ fun () ->
              Engine.with_tracer s.engine tr (fun () ->
                  Engine.with_budget s.engine (Some budget) (fun () ->
                      if concurrent then begin
                        ctx.Core.Context.apply_wrap <-
                          Some (writer_apply_wrap t);
                        Fun.protect
                          ~finally:(fun () ->
                            ctx.Core.Context.apply_wrap <- None)
                          (fun () ->
                            let v =
                              Engine.run_compiled s.engine plan.compiled
                            in
                            Engine.serialize s.engine v)
                      end
                      else
                        Xqb_store.Store.transactionally
                          (Catalog.store t.catalog)
                          (fun () ->
                            let v =
                              Engine.run_compiled s.engine plan.compiled
                            in
                            Engine.serialize s.engine v))))
          with
          | out ->
            if not concurrent then durable_publish t;
            out
          | exception e ->
            if not concurrent then (try durable_publish t with _ -> ());
            raise e)
      with
      | out ->
        finish true;
        Ok out
      | exception e ->
        finish false;
        let err = Service_error.classify e in
        Metrics.record_error t.metrics err.Service_error.kind;
        Events.warn t.events ~kind:"query.error"
          [
            ("jid", Events.I jid);
            ("kind", Events.S (Service_error.kind_to_string err.Service_error.kind));
          ];
        Error err
    in
    (* Abandoned without running (queue-time expiry, shutdown drain):
       still counts as a failed query of the appropriate kind. *)
    let on_abort e =
      unregister_job t jid;
      finish false;
      Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
    in
    (* Both sides gate on the *inferred* footprint when footprint
       scheduling is on: a parallel-safe reader's footprint has no
       write regions (read/read never conflicts, so readers behave
       exactly as under the old read lock), but its read regions are
       now precise enough to overlap with writers on *other*
       documents. Effecting jobs and the baseline toggle degrade to
       the binary extremes — read-everything / ⊤ — which is the old
       purity gate verbatim. *)
    let footprint =
      if t.footprints && plan.purity <> Core.Static.Effecting then
        plan.footprint
      else if plan.parallel then FP.read_all
      else FP.top
    in
    (match
       Scheduler.submit t.sched ~deadline:deadline_ns ~on_abort ?trace:tr
         ~footprint ~exclusive:(not plan.parallel) job
     with
    | fut -> (jid, fut)
    | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
      (match e with
      | Scheduler.Overloaded ->
        Events.warn t.events ~kind:"sched.overload"
          [
            ("jid", Events.I jid);
            ("queue_depth", Events.I (Scheduler.queue_depth t.sched));
          ]
      | _ -> ());
      on_abort e;
      (jid, Scheduler.ready (Error (Service_error.classify e))))

let submit t sid src = snd (submit_job t sid src)

(* Synchronous submit-and-await. *)
let query t sid src = await (submit t sid src)

(* EXPLAIN ANALYZE (wire [EXPLAIN]): compile through the algebraic
   [Runner] and execute with per-operator profiling, returning the
   annotated plan tree. Always on the write side — the query runs
   for real, side effects included, which is the only honest way to
   report actual cardinalities for a language with side effects —
   under the same governance (budget, registry, CANCEL) as a normal
   submission. Bypasses the plan cache: profiling wants the full
   compile path and the algebraic plan. *)
let explain_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  if t.read_only then begin
    (* EXPLAIN executes for real, side effects included — never on a
       replica *)
    let err =
      Service_error.classify
        (Failure "read-only replica: EXPLAIN executes the query; run it on the leader")
    in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  end
  else begin
  let t0 = Unix.gettimeofday () in
  let deadline_ns =
    match t.deadline_ms with
    | None -> max_int
    | Some ms -> Clock.now_ns () + (ms * 1_000_000)
  in
  let budget =
    Budget.create
      ?deadline_ns:(if deadline_ns = max_int then None else Some deadline_ns)
      ?fuel:t.fuel ?max_delta:t.max_delta ()
  in
  let jid =
    register_job t sid ~deadline:deadline_ns
      ~cancel:(Budget.cancel_token budget) ~started:t0
      ("EXPLAIN " ^ src)
  in
  let tr = if t.tracing then Some (Trace.create ()) else None in
  let flush_trace () =
    match tr with
    | Some tr ->
      Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
      push_trace t jid tr
    | None -> ()
  in
  let job () =
    Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
    Metrics.job_begin t.metrics ~parallel:false;
    Fun.protect ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:false)
    @@ fun () ->
    let run () =
      locked s.slock (fun () ->
          let ctx = Engine.context s.engine in
          Core.Update.stats_reset ctx.Core.Context.delta_stats;
          ctx.Core.Context.apply_ns <- 0;
          let att = attribution_begin () in
          Fun.protect
            ~finally:(fun () ->
              let gc_ns, samples = attribution_end att in
              note_effects t ~jid ~sid ~src ~trace:(Option.map Trace.id tr)
                ~gc_ns ~samples ctx)
          @@ fun () ->
          Engine.with_tracer s.engine tr (fun () ->
              Engine.with_budget s.engine (Some budget) (fun () ->
                  Xqb_store.Store.transactionally (Catalog.store t.catalog)
                    (fun () ->
                      let _, rendered =
                        (* the algebraic path doesn't go through
                           Engine.run_compiled, so label it here *)
                        Xqb_obs.Profile.with_phase "run" @@ fun () ->
                        Xqb_algebra.Runner.analyze s.engine src
                      in
                      (* same footer style as the ddo/footprint lines:
                         sampling + GC attribution, present only when
                         the corresponding collector is on *)
                      rendered ^ attribution_suffix t att))))
    in
    match
      match run () with
      | out ->
        durable_publish t;
        out
      | exception e ->
        (try durable_publish t with _ -> ());
        raise e
    with
    | rendered ->
      flush_trace ();
      Ok rendered
    | exception e ->
      flush_trace ();
      let err = Service_error.classify e in
      Metrics.record_error t.metrics err.Service_error.kind;
      Error err
  in
  let on_abort e =
    unregister_job t jid;
    Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
  in
  match
    Scheduler.submit t.sched ~deadline:deadline_ns ~on_abort ?trace:tr
      ~exclusive:true job
  with
  | fut -> (jid, fut)
  | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
    on_abort e;
    (jid, Scheduler.ready (Error (Service_error.classify e)))
  end

let explain t sid src = await (snd (explain_job t sid src))

let cache_stats t = Plan_cache.stats t.cache

(* Concurrent-writer gauges off the footprint gate: how many jobs are
   admitted right now (and how many of those hold write regions), plus
   the high-water marks since boot — the observable proof that
   disjoint writers actually overlap. *)
let concurrency_json t =
  let g = Scheduler.gate t.sched in
  Printf.sprintf
    "{\"footprint_scheduling\":%b,\"running\":%d,\"running_writers\":%d,\"peak\":%d,\"writer_peak\":%d}"
    t.footprints (Rwlock.running g)
    (Rwlock.running_writers g)
    (Rwlock.peak g) (Rwlock.writer_peak g)

(* Wire [METRICS PROM]: every layer's contribution on one shared
   {!Prom} emitter — service counters and windows, footprint-gate
   gauges, trace-ring and event-log gauges, durability (WAL /
   checkpoint / fsync), replica lag (both sides) and the health
   status — so # HELP/# TYPE discipline and counter naming hold for
   the whole page (test_service.ml lints it end to end). *)
(* -- wire-edge gauges ----------------------------------------------- *)

let set_edge_source t src = t.edge_src <- src
let edge_gauges t = Option.map (fun src -> src ()) t.edge_src

let edge_json (e : edge_gauges) =
  Printf.sprintf
    "{\"mode\":\"%s\",\"open\":%d,\"peak\":%d,\"accepted\":%d,\"conn_rejects\":%d,\"read_suspended\":%d,\"suspensions\":%d,\"overload_rejects\":%d,\"requests\":%d,\"batches\":%d,\"max_conns\":%d}"
    e.eg_mode e.eg_open e.eg_peak e.eg_accepted e.eg_conn_rejects e.eg_suspended
    e.eg_suspensions e.eg_overload_rejects e.eg_requests e.eg_batches
    e.eg_max_conns

(* Process identity for STATS / METRICS PROM: build info plus the
   three gauges every dashboard wants first (memory, descriptors,
   uptime). *)
let build_version = "1.0.0"

let process_json t =
  Printf.sprintf
    "{\"pid\":%d,\"rss_bytes\":%d,\"open_fds\":%d,\"uptime_s\":%.1f,\"version\":\"%s\",\"ocaml\":\"%s\"}"
    (Unix.getpid ())
    (Xqb_obs.Procstat.rss_bytes ())
    (Xqb_obs.Procstat.fd_count ())
    (Unix.gettimeofday () -. t.boot_wall)
    build_version Sys.ocaml_version

let metrics_prometheus t =
  let p = Prom.create () in
  Metrics.to_prom ~cache:(Plan_cache.stats t.cache) t.metrics p;
  let g = Scheduler.gate t.sched in
  let inflight = "Jobs currently admitted by the footprint gate." in
  Prom.gauge_i p ~help:inflight ~labels:[ ("side", "all") ]
    "xqbang_gate_inflight" (Rwlock.running g);
  Prom.gauge_i p ~help:inflight ~labels:[ ("side", "writer") ]
    "xqbang_gate_inflight" (Rwlock.running_writers g);
  let peak = "Peak concurrently admitted jobs since boot." in
  Prom.gauge_i p ~help:peak ~labels:[ ("side", "all") ]
    "xqbang_gate_inflight_peak" (Rwlock.peak g);
  Prom.gauge_i p ~help:peak ~labels:[ ("side", "writer") ]
    "xqbang_gate_inflight_peak" (Rwlock.writer_peak g);
  let size, cap, evicted = trace_ring_stats t in
  Prom.gauge_i p ~help:"Traces resident in the TRACE ring."
    "xqbang_trace_ring_size" size;
  Prom.gauge_i p ~help:"TRACE ring capacity (serve --trace-ring)."
    "xqbang_trace_ring_capacity" cap;
  Prom.counter p ~help:"Traces evicted from the TRACE ring."
    "xqbang_trace_ring_evictions_total" evicted;
  if Events.enabled t.events then begin
    Prom.counter p ~help:"Events logged since boot." "xqbang_events_total"
      (Events.total t.events);
    let at_least l = Events.count_at_least t.events l in
    List.iter
      (fun (name, exact) ->
        Prom.counter p ~help:"Events logged since boot, by severity."
          ~labels:[ ("level", name) ]
          "xqbang_events_by_level_total" exact)
      [
        ("debug", at_least Events.Debug - at_least Events.Info);
        ("info", at_least Events.Info - at_least Events.Warn);
        ("warn", at_least Events.Warn - at_least Events.Error);
        ("error", at_least Events.Error - at_least Events.Critical);
        ("critical", at_least Events.Critical);
      ]
  end;
  (match t.durable with Some d -> Durable.stats_prom d p | None -> ());
  (match t.repl with
  | None -> ()
  | Some r ->
    let applied, leader, lag, lag_bytes, lag_ms, frames =
      locked r.rm (fun () ->
          let lag, lag_bytes, lag_ms = replica_lag r in
          (r.r_applied_lsn, r.r_leader_lsn, lag, lag_bytes, lag_ms, r.r_frames))
    in
    Prom.gauge_i p ~help:"Highest LSN applied by this replica."
      "xqbang_replica_applied_lsn" applied;
    Prom.gauge_i p ~help:"Leader's last LSN as of the last SHIP."
      "xqbang_replica_leader_lsn" leader;
    Prom.gauge_i p ~help:"Frames this replica is behind the leader."
      "xqbang_replica_lag_frames" lag;
    Prom.gauge_i p ~help:"Bytes received but not yet applied (buffered half span)."
      "xqbang_replica_lag_bytes" lag_bytes;
    Prom.gauge p ~help:"Milliseconds since the last apply while behind the leader."
      "xqbang_replica_lag_ms" lag_ms;
    Prom.counter p ~help:"Frames applied by this replica since boot."
      "xqbang_replica_frames_applied_total" frames);
  (* leader side: one lag gauge per known replica *)
  (match t.durable with
  | Some d when locked t.pmutex (fun () -> Hashtbl.length t.peers) > 0 ->
    let last = Durable.last_lsn d in
    let peers =
      locked t.pmutex (fun () ->
          Hashtbl.fold (fun id pr acc -> (id, pr.p_acked) :: acc) t.peers [])
    in
    List.iter
      (fun (id, acked) ->
        Prom.gauge_i p ~help:"Last LSN each replica acknowledged."
          ~labels:[ ("replica", id) ]
          "xqbang_peer_acked_lsn" acked;
        Prom.gauge_i p ~help:"Frames each replica is behind the WAL head."
          ~labels:[ ("replica", id) ]
          "xqbang_peer_lag_frames"
          (Stdlib.max 0 (last - acked)))
      peers
  | _ -> ());
  (match edge_gauges t with
  | None -> ()
  | Some e ->
    let lbl = [ ("mode", e.eg_mode) ] in
    Prom.gauge_i p ~help:"Connections open on the wire edge." ~labels:lbl
      "xqbang_edge_open_connections" e.eg_open;
    Prom.gauge_i p ~help:"Peak concurrently open connections since boot."
      ~labels:lbl "xqbang_edge_open_connections_peak" e.eg_peak;
    Prom.counter p ~help:"Connections accepted since boot." ~labels:lbl
      "xqbang_edge_accepted_total" e.eg_accepted;
    Prom.counter p ~help:"Connections refused at --max-conns." ~labels:lbl
      "xqbang_edge_conn_rejects_total" e.eg_conn_rejects;
    Prom.gauge_i p
      ~help:"Connections read-suspended by scheduler backpressure right now."
      ~labels:lbl "xqbang_edge_read_suspended" e.eg_suspended;
    Prom.counter p ~help:"Read-suspension episodes since boot." ~labels:lbl
      "xqbang_edge_suspensions_total" e.eg_suspensions;
    Prom.counter p
      ~help:"Requests rejected with [overloaded] at the hard watermark."
      ~labels:lbl "xqbang_edge_overload_rejects_total" e.eg_overload_rejects;
    Prom.counter p ~help:"Requests parsed off the wire." ~labels:lbl
      "xqbang_edge_requests_total" e.eg_requests;
    Prom.counter p ~help:"Readiness-cycle admission batches." ~labels:lbl
      "xqbang_edge_batches_total" e.eg_batches);
  (* process identity + continuous profiling + GC telemetry *)
  Prom.gauge p
    ~help:"Build metadata; the value is always 1."
    ~labels:
      [ ("version", build_version); ("ocaml_version", Sys.ocaml_version) ]
    "xqbang_build_info" 1.;
  Prom.gauge_i p ~help:"Resident set size in bytes."
    "xqbang_process_resident_memory_bytes"
    (Xqb_obs.Procstat.rss_bytes ());
  Prom.gauge_i p ~help:"Open file descriptors."
    "xqbang_process_open_fds"
    (Xqb_obs.Procstat.fd_count ());
  Prom.gauge p ~help:"Seconds since service boot."
    "xqbang_process_uptime_seconds"
    (Unix.gettimeofday () -. t.boot_wall);
  Prom.gauge_i p
    ~help:"Continuous profiler state: 1 = sampling, 0 = stopped."
    "xqbang_profile_running"
    (if Xqb_obs.Profile.running () then 1 else 0);
  Prom.gauge_i p ~help:"Profiler sampling rate (Hz)."
    "xqbang_profile_hz" (Xqb_obs.Profile.hz ());
  Prom.counter p ~help:"Profiler samples aggregated since start/reset."
    "xqbang_profile_samples_total"
    (Xqb_obs.Profile.samples ());
  Prom.counter p
    ~help:"Profiler samples dropped (handler lock contention or table cap)."
    "xqbang_profile_dropped_total"
    (Xqb_obs.Profile.dropped ());
  if t.gc_tel && Xqb_obs.Gc_tel.enabled () then Xqb_obs.Gc_tel.to_prom p;
  Prom.gauge_i p
    ~help:"Service health: 0 = ok, 1 = degraded, 2 = critical (see HEALTH)."
    "xqbang_health_status"
    (match health_level (health_reasons t) with
    | `Ok -> 0
    | `Degraded -> 1
    | `Critical -> 2);
  Prom.contents p

let telemetry_json t =
  let size, cap, evicted = trace_ring_stats t in
  Printf.sprintf
    "{\"events\":{\"enabled\":%b,\"total\":%d,\"warn_or_above\":%d},\"trace_ring\":{\"size\":%d,\"capacity\":%d,\"evictions\":%d}}"
    (Events.enabled t.events)
    (Events.total t.events)
    (Events.count_at_least t.events Events.Warn)
    size cap evicted

let stats_json t =
  let extra =
    [
      ("windows", Metrics.windows_json t.metrics);
      ("health", health_json t);
      ("telemetry", telemetry_json t);
      ("concurrency", concurrency_json t);
      ("inflight", inflight_json t);
      ("process", process_json t);
      ("profiler", Xqb_obs.Profile.stat_json ());
    ]
  in
  let extra =
    if t.gc_tel && Xqb_obs.Gc_tel.enabled () then
      ("gc", Xqb_obs.Gc_tel.stats_json ()) :: extra
    else extra
  in
  let extra =
    match edge_gauges t with
    | Some e -> ("edge", edge_json e) :: extra
    | None -> extra
  in
  let extra =
    match durability_json t with
    | Some j -> ("durability", j) :: extra
    | None -> extra
  in
  let extra =
    match t.repl with
    | None -> extra
    | Some _ -> ("replica", replica_stat_json t) :: extra
  in
  Metrics.to_json
    ~cache:(Plan_cache.stats t.cache)
    ~docs:(Catalog.list t.catalog)
    ~extra t.metrics

(* -- the crash flight recorder (live half) --------------------------

   A dump of "what the service is doing right now": the event tail,
   the in-flight job table, gate + queue state. Written on SIGTERM
   and from the [at_exit] guard when the process exits without a
   clean {!shutdown} — the SIGKILL case is covered by the boot half
   ({!detect_unclean_shutdown}) instead, which reconstructs from the
   per-event-flushed sink. *)

let flight_json t ~reason =
  let size, cap, evicted = trace_ring_stats t in
  let g = Scheduler.gate t.sched in
  Printf.sprintf
    "{\"reason\":\"%s\",\"wall_s\":%.3f,\"queue_depth\":%d,\"gate\":{\"running\":%d,\"running_writers\":%d},\"trace_ring\":{\"size\":%d,\"capacity\":%d,\"evictions\":%d},\"last_lsn\":%s,\"health\":%s,\"inflight\":%s,\"events\":%s}"
    (Metrics.json_escape reason)
    (Unix.gettimeofday ())
    (Scheduler.queue_depth t.sched)
    (Rwlock.running g) (Rwlock.running_writers g) size cap evicted
    (match t.durable with
    | Some d -> string_of_int (Durable.last_lsn d)
    | None -> "null")
    (health_json t) (inflight_json t)
    (Events.events_json (Events.tail t.events flight_splice_cap))

let write_flight t ~reason =
  match t.data_dir with
  | None -> None
  | Some dir -> (
    let path =
      Filename.concat dir
        (Printf.sprintf "flight-%d-%d.json"
           (int_of_float (Unix.gettimeofday () *. 1000.))
           (Unix.getpid ()))
    in
    match open_out path with
    | oc ->
      output_string oc (flight_json t ~reason);
      output_char oc '\n';
      close_out_noerr oc;
      Some path
    | exception Sys_error _ -> None)

(* Called by `serve` (and only serve: a library embedder owns its own
   signals). The [at_exit] guard fires on any exit path that skipped
   {!shutdown} — including an uncaught exception unwinding main. *)
let install_crash_hooks t =
  let dumped = ref false in
  let dump reason =
    if (not !dumped) && not t.stopping then begin
      dumped := true;
      ignore (write_flight t ~reason)
    end
  in
  at_exit (fun () -> dump "exit-without-shutdown");
  try
    ignore
      (Sys.signal Sys.sigterm
         (Sys.Signal_handle
            (fun _ ->
              dump "sigterm";
              exit 143)))
  with Invalid_argument _ | Sys_error _ -> ()

(* Stop the service. Without [deadline], drain: queued jobs still
   run to completion. With [deadline] (seconds), give queued +
   running work that long, then abandon the queue ([overloaded]
   futures) and cancel every in-flight budget so running jobs die at
   their next poll. *)
let shutdown ?deadline t =
  t.stopping <- true;
  (* stop the replication client first: close its socket to unblock a
     read in flight, then join *)
  (match t.repl with
  | Some r ->
    r.r_stop <- true;
    (match locked r.rm (fun () -> r.r_sock) with
    | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (match r.r_thread with
    | Some th ->
      Thread.join th;
      r.r_thread <- None
    | None -> ())
  | None -> ());
  (match t.watchdog with
  | Some th ->
    Thread.join th;
    t.watchdog <- None
  | None -> ());
  (match t.monitor with
  | Some th ->
    Thread.join th;
    t.monitor <- None
  | None -> ());
  let cancel_inflight () =
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j -> Budget.request j.cancel Budget.Cancelled)
          t.jobs)
  in
  Scheduler.shutdown ?deadline ~on_deadline:cancel_inflight t.sched;
  (* the pool is drained: one final fsync and the WAL closes *)
  (match t.durable with Some d -> Durable.close d | None -> ());
  (* disarm the profiler this boot armed (a wire PROFILE START on an
     unowned service outlives it deliberately — the profiler is
     process-global), release the GC-telemetry refcount *)
  if t.profile_owned then ignore (Xqb_obs.Profile.stop ());
  if t.gc_tel then Xqb_obs.Gc_tel.stop ();
  (* last event in the sink: its presence is how the next boot knows
     this run ended clean (no flight dump) *)
  Events.info t.events ~kind:"lifecycle.shutdown" [];
  Events.close t.events
