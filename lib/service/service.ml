(* The query service: multi-client sessions over one shared store.

   Putting the pieces together:

   - every session wraps a [Core.Engine.t] sharing the catalog's
     store, so [fn:doc]/bound documents are loaded once and visible
     to all sessions, while functions and globals stay per-session;
   - prepared plans are cached across sessions ({!Plan_cache}),
     keyed on whitespace-normalized source — a hit skips
     parse → normalize → static-check → rewrite entirely;
   - execution goes through the purity-gated {!Scheduler}:
     statically parallel-safe programs ({!Core.Static.prog_parallel_safe}
     — Pure *and* allocation-free) run concurrently on the read side
     of a readers–writer lock, everything else takes the write side;
   - {!Metrics} aggregates per-query latency, queue depth, purity
     counts, plan-cache counters and applied-∆ counts (via each
     session's [Context.on_apply] hook).

   Concurrency protocol, in one place:

   - session mutable state (globals, function table) is only touched
     (a) at submit time under the session lock (compile / install /
     fork) and (b) inside write-side jobs, which also take the
     session lock and additionally exclude every reader via the
     write lock;
   - read-side jobs evaluate in a [Context.fork_read] taken at
     submit time under the session lock, so they observe a coherent
     snapshot of the session and share nothing mutable with it;
   - the store is only mutated by write-side jobs and catalog loads
     (also under the write lock); the one exception, the lazy index
     caches filled during reads, is internally locked by the store. *)

module Engine = Core.Engine

type plan = {
  compiled : Engine.compiled;
  purity : Core.Static.purity;  (* of the body, for metrics *)
  parallel : bool;  (* Static.prog_parallel_safe: read-side eligible *)
}

type session = {
  sid : int;
  engine : Engine.t;
  slock : Mutex.t;
  mutable docs_held : string list;
}

type t = {
  catalog : Catalog.t;
  cache : plan Plan_cache.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  sessions : (int, session) Hashtbl.t;
  smutex : Mutex.t;
  mutable next_sid : int;
  seed : int;
}

let create ?(domains = 4) ?(cache_capacity = 128) ?(seed = 0x5eed) () =
  {
    catalog = Catalog.create ();
    cache = Plan_cache.create ~capacity:cache_capacity ();
    sched = Scheduler.create ~domains ();
    metrics = Metrics.create ();
    sessions = Hashtbl.create 16;
    smutex = Mutex.create ();
    next_sid = 1;
    seed;
  }

let catalog t = t.catalog
let scheduler t = t.sched
let metrics t = t.metrics

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* -- sessions ------------------------------------------------------- *)

let open_session t =
  locked t.smutex (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let engine =
        Engine.create ~seed:(t.seed + sid) ~store:(Catalog.store t.catalog) ()
      in
      (* fn:doc falls back to the shared catalog (lookup only) *)
      (Engine.context engine).Core.Context.doc_lookup <-
        Some (fun uri -> Catalog.find t.catalog uri);
      (* applied-∆ accounting; only non-empty ∆s are interesting *)
      (Engine.context engine).Core.Context.on_apply <-
        Some
          (fun delta _mode ->
            if delta <> [] then Metrics.record_delta t.metrics delta);
      Hashtbl.replace t.sessions sid
        { sid; engine; slock = Mutex.create (); docs_held = [] };
      sid)

let find_session t sid =
  match locked t.smutex (fun () -> Hashtbl.find_opt t.sessions sid) with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown session %d" sid)

let close_session t sid =
  match locked t.smutex (fun () ->
      let s = Hashtbl.find_opt t.sessions sid in
      Hashtbl.remove t.sessions sid;
      s)
  with
  | None -> ()
  | Some s ->
    locked s.slock (fun () ->
        List.iter (Catalog.release t.catalog) s.docs_held;
        s.docs_held <- [])

let session_count t = locked t.smutex (fun () -> Hashtbl.length t.sessions)

(* Load a document into the shared catalog (under the scheduler's
   write lock — loading parses XML into the shared store) and attach
   it to the session: registered for [fn:doc(uri)] and bound to
   [$uri]. Load-once: a second session attaching the same URI reuses
   the resident tree. *)
let load_document t sid ~uri xml =
  let s = find_session t sid in
  let root =
    match Catalog.acquire t.catalog uri with
    | Some root -> root
    | None ->
      Scheduler.with_write t.sched (fun () ->
          let root = Catalog.load t.catalog ~uri xml in
          ignore (Catalog.acquire t.catalog uri);
          root)
  in
  locked s.slock (fun () ->
      if not (List.mem uri s.docs_held) then s.docs_held <- uri :: s.docs_held;
      Core.Context.register_doc (Engine.context s.engine) uri root;
      Engine.bind_node s.engine uri root)

(* -- query submission ----------------------------------------------- *)

let error_message = function
  | Engine.Compile_error m -> m
  | Xqb_xdm.Errors.Dynamic_error (code, m) ->
    Printf.sprintf "dynamic error [%s] %s" code m
  | Core.Conflict.Conflict m -> "update conflict: " ^ m
  | Xqb_store.Store.Update_error m -> "update error: " ^ m
  | Invalid_argument m | Failure m -> m
  | e -> Printexc.to_string e

(* Prepared plan for [src]: cache hit or full compile. On a hit the
   program's function declarations are still installed into the
   session (cheap), so cross-session hits behave like a local
   compile. Caller holds the session lock. *)
let prepare t s src =
  let key = Plan_cache.normalize_key src in
  match Plan_cache.find t.cache key with
  | Some plan ->
    Engine.install_functions s.engine plan.compiled;
    plan
  | None ->
    let compiled = Engine.compile s.engine src in
    let plan =
      {
        compiled;
        purity = Engine.body_purity compiled;
        parallel = Engine.parallel_safe compiled;
      }
    in
    Plan_cache.add t.cache key plan;
    plan

(* Submit a query for the session; the future completes with the
   serialized result or an error message. Parallel-safe programs run
   concurrently on the scheduler's read side against a fork of the
   session taken now; everything else serializes on the write side. *)
let submit t sid src : (string, string) result Scheduler.future =
  let s = find_session t sid in
  let t0 = Unix.gettimeofday () in
  Metrics.record_queue_depth t.metrics (Scheduler.queue_depth t.sched);
  match
    locked s.slock (fun () ->
        let plan = prepare t s src in
        let fork = if plan.parallel then Some (Engine.fork_read s.engine) else None in
        (plan, fork))
  with
  | exception e ->
    Metrics.record_compile_error t.metrics;
    Scheduler.ready (Error (error_message e))
  | plan, fork ->
    let finish ok =
      let latency_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      Metrics.record_query t.metrics ~purity:plan.purity ~parallel:plan.parallel
        ~ok ~latency_ns
    in
    let job () =
      Metrics.job_begin t.metrics ~parallel:plan.parallel;
      Fun.protect
        ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:plan.parallel)
      @@ fun () ->
      match
        match fork with
        | Some feng ->
          (* read side: forked context, snap-free evaluation *)
          let v = Engine.run_readonly feng plan.compiled in
          Engine.serialize_with (Catalog.store t.catalog) v
        | None ->
          (* write side: the session itself, full snap semantics *)
          locked s.slock (fun () ->
              let v = Engine.run_compiled s.engine plan.compiled in
              Engine.serialize s.engine v)
      with
      | out ->
        finish true;
        Ok out
      | exception e ->
        finish false;
        Error (error_message e)
    in
    Scheduler.submit t.sched ~exclusive:(not plan.parallel) job

(* Synchronous submit-and-await. *)
let query t sid src =
  match Scheduler.await (submit t sid src) with
  | Ok r -> r
  | Error e -> Error (error_message e)

let cache_stats t = Plan_cache.stats t.cache

let stats_json t =
  Metrics.to_json
    ~cache:(Plan_cache.stats t.cache)
    ~docs:(Catalog.list t.catalog) t.metrics

let shutdown t = Scheduler.shutdown t.sched
