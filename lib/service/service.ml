(* The query service: multi-client sessions over one shared store.

   Putting the pieces together:

   - every session wraps a [Core.Engine.t] sharing the catalog's
     store, so [fn:doc]/bound documents are loaded once and visible
     to all sessions, while functions and globals stay per-session;
   - prepared plans are cached across sessions ({!Plan_cache}),
     keyed on literal-aware whitespace-normalized source — a hit
     skips parse → normalize → static-check → rewrite entirely;
   - execution goes through the purity-gated {!Scheduler}:
     statically parallel-safe programs ({!Core.Static.prog_parallel_safe}
     — Pure *and* allocation-free) run concurrently on the read side
     of a readers–writer lock, everything else takes the write side;
   - every job runs under a {!Xqb_governor.Budget}: the service-wide
     deadline / fuel / pending-∆ limits if configured, plus a cancel
     token always, so [CANCEL] works even on an unlimited service.
     Budget violations surface as structured {!Service_error}s
     ([timeout] / [cancelled]), admission control as [overloaded];
   - {!Metrics} aggregates per-query latency, queue depth, purity
     counts, plan-cache counters, applied-∆ counts and failed
     queries by taxonomy kind.

   Concurrency protocol, in one place:

   - session mutable state (globals, function table) is only touched
     (a) at submit time under the session lock (compile / install /
     fork) and (b) inside write-side jobs, which also take the
     session lock and additionally exclude every reader via the
     write lock;
   - read-side jobs evaluate in a [Context.fork_read] taken at
     submit time under the session lock, so they observe a coherent
     snapshot of the session and share nothing mutable with it (the
     fork carries the job's budget; [Engine.with_budget] installs it
     on the worker domain for the store layer);
   - the store is only mutated by write-side jobs and catalog loads
     (also under the write lock); the one exception, the lazy index
     caches filled during reads, is internally locked by the store;
   - write-side execution is wrapped in [Store.transactionally]: a
     query killed mid-update (deadline, fuel, CANCEL) — or failing
     for any other reason — leaves the store exactly as it found it,
     even if nested snaps had already applied. *)

module Engine = Core.Engine
module Budget = Xqb_governor.Budget
module Trace = Xqb_obs.Trace

type plan = {
  compiled : Engine.compiled;
  purity : Core.Static.purity;  (* of the body, for metrics *)
  parallel : bool;  (* Static.prog_parallel_safe: read-side eligible *)
}

type session = {
  sid : int;
  engine : Engine.t;
  slock : Mutex.t;
  mutable docs_held : string list;
}

(* One in-flight (queued or running) governed job, registered so the
   wire [CANCEL], the deadline watchdog and [STATS] can reach it. *)
type inflight = {
  jid : int;
  jsid : int;
  cancel : Budget.cancel;
  started : float;
  job_deadline : float;  (* absolute; infinity when ungoverned *)
  src : string;
}

type t = {
  catalog : Catalog.t;
  cache : plan Plan_cache.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  sessions : (int, session) Hashtbl.t;
  smutex : Mutex.t;
  mutable next_sid : int;
  seed : int;
  (* governance config (service-wide; applied to every query) *)
  deadline_ms : int option;
  fuel : int option;
  max_delta : int option;
  (* in-flight job registry *)
  jobs : (int, inflight) Hashtbl.t;
  jmutex : Mutex.t;
  mutable next_jid : int;
  (* deadline watchdog (spawned only when a deadline is configured) *)
  mutable watchdog : Thread.t option;
  mutable stopping : bool;
  (* tracing: when on, every job records a per-query span trace
     (queue wait, lock wait, compile phases, execution, snap apply),
     kept in a bounded ring for the wire [TRACE] command. Off = each
     instrumentation point costs one branch. *)
  tracing : bool;
  tr_mutex : Mutex.t;
  mutable recent_traces : (int * Trace.t) list;  (* newest first, bounded *)
  (* effect observability: per-job ∆ statistics (wire DELTA) and the
     slow-effect log — write-side jobs whose apply phase exceeded
     [slow_ns] leave a ∆ summary + trace id in a bounded ring (wire
     SLOWLOG). *)
  slow_ns : int;
  sl_mutex : Mutex.t;
  mutable slowlog : slow_entry list;  (* newest first, bounded *)
  mutable last_delta : string option;  (* rendered ∆-stats JSON *)
}

and slow_entry = {
  sl_jid : int;
  sl_sid : int;
  sl_src : string;
  sl_apply_ns : int;
  sl_snaps : int;
  sl_requests : int;
  sl_trace : string option;
}

let trace_ring_cap = 32
let slowlog_cap = 64

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The watchdog is belt-and-braces on top of the budget's own clock
   polls: it marks the cancel token of any overdue job, catching
   jobs that are stuck somewhere that never reaches a poll point
   (e.g. blocked behind the write lock). First reason wins, so a
   job that already died of its own deadline is unaffected. *)
let watchdog_loop t () =
  while not t.stopping do
    Thread.delay 0.02;
    let now = Unix.gettimeofday () in
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j ->
            if now > j.job_deadline then Budget.request j.cancel Budget.Deadline)
          t.jobs)
  done

let create ?(domains = 4) ?(cache_capacity = 128) ?(seed = 0x5eed) ?deadline_ms
    ?fuel ?max_delta ?max_queue ?(tracing = false) ?(slow_apply_ms = 10) () =
  let t =
    {
      catalog = Catalog.create ();
      cache = Plan_cache.create ~capacity:cache_capacity ();
      sched = Scheduler.create ~domains ?max_queue ();
      metrics = Metrics.create ();
      sessions = Hashtbl.create 16;
      smutex = Mutex.create ();
      next_sid = 1;
      seed;
      deadline_ms;
      fuel;
      max_delta;
      jobs = Hashtbl.create 16;
      jmutex = Mutex.create ();
      next_jid = 1;
      watchdog = None;
      stopping = false;
      tracing;
      tr_mutex = Mutex.create ();
      recent_traces = [];
      slow_ns = slow_apply_ms * 1_000_000;
      sl_mutex = Mutex.create ();
      slowlog = [];
      last_delta = None;
    }
  in
  if deadline_ms <> None then t.watchdog <- Some (Thread.create (watchdog_loop t) ());
  t

let catalog t = t.catalog
let scheduler t = t.sched
let metrics t = t.metrics

(* -- sessions ------------------------------------------------------- *)

let open_session t =
  locked t.smutex (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let engine =
        Engine.create ~seed:(t.seed + sid) ~store:(Catalog.store t.catalog) ()
      in
      (* fn:doc falls back to the shared catalog (lookup only) *)
      (Engine.context engine).Core.Context.doc_lookup <-
        Some (fun uri -> Catalog.find t.catalog uri);
      (* applied-∆ accounting; only non-empty ∆s are interesting *)
      (Engine.context engine).Core.Context.on_apply <-
        Some
          (fun delta _mode ->
            if delta <> [] then Metrics.record_delta t.metrics delta);
      Hashtbl.replace t.sessions sid
        { sid; engine; slock = Mutex.create (); docs_held = [] };
      sid)

let find_session t sid =
  match locked t.smutex (fun () -> Hashtbl.find_opt t.sessions sid) with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown session %d" sid)

let close_session t sid =
  match locked t.smutex (fun () ->
      let s = Hashtbl.find_opt t.sessions sid in
      Hashtbl.remove t.sessions sid;
      s)
  with
  | None -> ()
  | Some s ->
    locked s.slock (fun () ->
        List.iter (Catalog.release t.catalog) s.docs_held;
        s.docs_held <- [])

let session_count t = locked t.smutex (fun () -> Hashtbl.length t.sessions)

(* Load a document into the shared catalog (under the scheduler's
   write lock — loading parses XML into the shared store) and attach
   it to the session: registered for [fn:doc(uri)] and bound to
   [$uri]. Load-once: a second session attaching the same URI reuses
   the resident tree. *)
let load_document t sid ~uri xml =
  let s = find_session t sid in
  let root =
    match Catalog.acquire t.catalog uri with
    | Some root -> root
    | None ->
      Scheduler.with_write t.sched (fun () ->
          let root = Catalog.load t.catalog ~uri xml in
          ignore (Catalog.acquire t.catalog uri);
          root)
  in
  locked s.slock (fun () ->
      if not (List.mem uri s.docs_held) then s.docs_held <- uri :: s.docs_held;
      Core.Context.register_doc (Engine.context s.engine) uri root;
      Engine.bind_node s.engine uri root)

(* -- query submission ----------------------------------------------- *)

let error_message e = (Service_error.classify e).Service_error.message

(* Prepared plan for [src]: cache hit or full compile. On a hit the
   program's function declarations are still installed into the
   session (cheap), so cross-session hits behave like a local
   compile. Caller holds the session lock. *)
let prepare t s src =
  let key = Plan_cache.normalize_key src in
  match Plan_cache.find t.cache key with
  | Some plan ->
    (match (Engine.context s.engine).Core.Context.tracer with
    | Some tr -> Trace.instant tr "plan.cache.hit"
    | None -> ());
    Engine.install_functions s.engine plan.compiled;
    plan
  | None ->
    let compiled = Engine.compile s.engine src in
    let plan =
      {
        compiled;
        purity = Engine.body_purity compiled;
        parallel = Engine.parallel_safe compiled;
      }
    in
    Plan_cache.add t.cache key plan;
    plan

(* -- the in-flight registry ----------------------------------------- *)

let register_job t sid ~deadline ~cancel ~started src =
  locked t.jmutex (fun () ->
      let jid = t.next_jid in
      t.next_jid <- jid + 1;
      let src =
        if String.length src <= 120 then src else String.sub src 0 120 ^ "…"
      in
      Hashtbl.replace t.jobs jid
        { jid; jsid = sid; cancel; started; job_deadline = deadline; src };
      jid)

let unregister_job t jid = locked t.jmutex (fun () -> Hashtbl.remove t.jobs jid)

(* Request cancellation of an in-flight job. True if the job was
   found (still queued or running); the job itself observes the
   token at its next budget poll and fails with [cancelled]. *)
let cancel t jid =
  match locked t.jmutex (fun () -> Hashtbl.find_opt t.jobs jid) with
  | None -> false
  | Some j ->
    Budget.request j.cancel Budget.Cancelled;
    true

let inflight_count t = locked t.jmutex (fun () -> Hashtbl.length t.jobs)

(* -- the recent-trace ring ------------------------------------------ *)

let push_trace t jid tr =
  locked t.tr_mutex (fun () ->
      let keep =
        List.filteri
          (fun i _ -> i < trace_ring_cap - 1)
          (List.filter (fun (j, _) -> j <> jid) t.recent_traces)
      in
      t.recent_traces <- (jid, tr) :: keep)

(* Chrome trace-event JSON for job [jid], or the most recent traced
   job when [jid] is [None]. *)
let trace_json t jid =
  locked t.tr_mutex (fun () ->
      match jid with
      | Some j ->
        Option.map
          (fun tr -> (j, Trace.to_chrome_json tr))
          (List.assoc_opt j t.recent_traces)
      | None -> (
        match t.recent_traces with
        | (j, tr) :: _ -> Some (j, Trace.to_chrome_json tr)
        | [] -> None))

(* -- effect observability ------------------------------------------- *)

(* Rendered ∆-statistics JSON for one write-side job: requests by
   kind, snap-depth histogram, conflicts checked, apply-phase wall
   time. This is the wire DELTA payload. *)
let delta_stats_json ~jid ~apply_ns (st : Core.Update.stats) =
  Printf.sprintf
    "{\"jid\":%d,\"snaps\":%d,\"requests\":{\"insert\":%d,\"delete\":%d,\"rename\":%d,\"set_value\":%d},\"total_requests\":%d,\"conflicts_checked\":%d,\"max_snap_depth\":%d,\"snap_depth_hist\":[%s],\"apply_ns\":%d}"
    jid st.Core.Update.snaps st.Core.Update.inserts st.Core.Update.deletes
    st.Core.Update.renames st.Core.Update.set_values
    (Core.Update.stats_requests st)
    st.Core.Update.conflicts_checked st.Core.Update.max_snap_depth
    (String.concat ","
       (Array.to_list (Array.map string_of_int st.Core.Update.depth_hist)))
    apply_ns

(* Called right after a write-side job finishes (session lock held):
   snapshot the job's ∆ statistics for the wire DELTA command, and
   ring-buffer a slow-effect entry when the apply phase crossed the
   threshold. *)
let note_effects t ~jid ~sid ~src ~trace ctx =
  let st = ctx.Core.Context.delta_stats in
  let apply_ns = ctx.Core.Context.apply_ns in
  let snaps = st.Core.Update.snaps in
  let requests = Core.Update.stats_requests st in
  let json = delta_stats_json ~jid ~apply_ns st in
  locked t.sl_mutex (fun () ->
      t.last_delta <- Some json;
      if apply_ns >= t.slow_ns && snaps > 0 then begin
        let entry =
          {
            sl_jid = jid;
            sl_sid = sid;
            sl_src =
              (if String.length src <= 120 then src
               else String.sub src 0 120 ^ "…");
            sl_apply_ns = apply_ns;
            sl_snaps = snaps;
            sl_requests = requests;
            sl_trace = trace;
          }
        in
        t.slowlog <-
          entry :: List.filteri (fun i _ -> i < slowlog_cap - 1) t.slowlog
      end)

(* Last write-side job's ∆ statistics; [None] before any updating
   query ran. *)
let delta_json t = locked t.sl_mutex (fun () -> t.last_delta)

let slowlog_json t =
  let entries = locked t.sl_mutex (fun () -> t.slowlog) in
  "["
  ^ String.concat ","
      (List.map
         (fun e ->
           Printf.sprintf
             "{\"jid\":%d,\"sid\":%d,\"apply_ns\":%d,\"snaps\":%d,\"requests\":%d,\"trace\":%s,\"src\":\"%s\"}"
             e.sl_jid e.sl_sid e.sl_apply_ns e.sl_snaps e.sl_requests
             (match e.sl_trace with
             | Some id -> Printf.sprintf "\"%s\"" (Metrics.json_escape id)
             | None -> "null")
             (Metrics.json_escape e.sl_src))
         entries)
  ^ "]"

let slowlog_length t = locked t.sl_mutex (fun () -> List.length t.slowlog)

let inflight_json t =
  let now = Unix.gettimeofday () in
  let entries =
    locked t.jmutex (fun () ->
        Hashtbl.fold
          (fun _ j acc ->
            Printf.sprintf "{\"jid\":%d,\"sid\":%d,\"running_ms\":%.0f,\"src\":\"%s\"}"
              j.jid j.jsid
              ((now -. j.started) *. 1e3)
              (Metrics.json_escape j.src)
            :: acc)
          t.jobs [])
  in
  "[" ^ String.concat "," entries ^ "]"

(* -- submission ----------------------------------------------------- *)

(* Map a future's exception side into the structured taxonomy. *)
let await fut =
  match Scheduler.await fut with
  | Ok r -> r
  | Error e -> Error (Service_error.classify e)

(* Submit a query; returns the job id (usable with [cancel]) and a
   future resolving to the serialized result or a structured error.
   Parallel-safe programs run concurrently on the scheduler's read
   side against a fork of the session taken now; everything else
   serializes on the write side under [Store.transactionally], so a
   query killed by its budget leaves the store unchanged. *)
let submit_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  let t0 = Unix.gettimeofday () in
  Metrics.record_queue_depth t.metrics (Scheduler.queue_depth t.sched);
  (* One tracer per job. Installed on the session engine only while
     the session lock is held (prepare + fork); a read-side fork
     copies it, so spans recorded by the fork on a worker domain land
     in this job's trace without the session ever sharing a tracer
     between two jobs. *)
  let tr = if t.tracing then Some (Trace.create ()) else None in
  match
    locked s.slock (fun () ->
        Engine.with_tracer s.engine tr (fun () ->
            let plan = prepare t s src in
            let fork =
              if plan.parallel then Some (Engine.fork_read s.engine) else None
            in
            (plan, fork)))
  with
  | exception e ->
    Metrics.record_compile_error t.metrics;
    let err = Service_error.classify e in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  | plan, fork ->
    let deadline =
      match t.deadline_ms with
      | None -> infinity
      | Some ms -> t0 +. (float_of_int ms /. 1000.)
    in
    let budget =
      Budget.create
        ?deadline:(if Float.is_finite deadline then Some deadline else None)
        ?fuel:t.fuel ?max_delta:t.max_delta ()
    in
    let jid =
      register_job t sid ~deadline ~cancel:(Budget.cancel_token budget)
        ~started:t0 src
    in
    let finish ok =
      let latency_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      Metrics.record_query t.metrics ~purity:plan.purity ~parallel:plan.parallel
        ~ok ~latency_ns;
      match tr with
      | Some tr ->
        (* fold the job's span totals into the per-phase latency
           histograms and keep the trace for the wire [TRACE] *)
        Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
        push_trace t jid tr
      | None -> ()
    in
    let job () =
      Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
      Metrics.job_begin t.metrics ~parallel:plan.parallel;
      Fun.protect
        ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:plan.parallel)
      @@ fun () ->
      match
        match fork with
        | Some feng ->
          (* read side: forked context, snap-free evaluation.
             [run_readonly] re-forks internally; the fork inherits
             the session budget we install here. *)
          Engine.with_budget feng (Some budget) (fun () ->
              let v = Engine.run_readonly feng plan.compiled in
              Engine.serialize_with (Catalog.store t.catalog) v)
        | None ->
          (* write side: the session itself, full snap semantics,
             transactional so budget kills roll back cleanly. The
             job's ∆ statistics and apply-phase wall time are
             snapshotted for DELTA / the slow-effect log even when it
             fails. *)
          locked s.slock (fun () ->
              let ctx = Engine.context s.engine in
              Core.Update.stats_reset ctx.Core.Context.delta_stats;
              ctx.Core.Context.apply_ns <- 0;
              Fun.protect
                ~finally:(fun () ->
                  note_effects t ~jid ~sid ~src
                    ~trace:(Option.map Trace.id tr)
                    ctx)
              @@ fun () ->
              Engine.with_tracer s.engine tr (fun () ->
                  Engine.with_budget s.engine (Some budget) (fun () ->
                      Xqb_store.Store.transactionally (Catalog.store t.catalog)
                        (fun () ->
                          let v = Engine.run_compiled s.engine plan.compiled in
                          Engine.serialize s.engine v))))
      with
      | out ->
        finish true;
        Ok out
      | exception e ->
        finish false;
        let err = Service_error.classify e in
        Metrics.record_error t.metrics err.Service_error.kind;
        Error err
    in
    (* Abandoned without running (queue-time expiry, shutdown drain):
       still counts as a failed query of the appropriate kind. *)
    let on_abort e =
      unregister_job t jid;
      finish false;
      Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
    in
    (match
       Scheduler.submit t.sched ~deadline ~on_abort ?trace:tr
         ~exclusive:(not plan.parallel) job
     with
    | fut -> (jid, fut)
    | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
      on_abort e;
      (jid, Scheduler.ready (Error (Service_error.classify e))))

let submit t sid src = snd (submit_job t sid src)

(* Synchronous submit-and-await. *)
let query t sid src = await (submit t sid src)

(* EXPLAIN ANALYZE (wire [EXPLAIN]): compile through the algebraic
   [Runner] and execute with per-operator profiling, returning the
   annotated plan tree. Always on the write side — the query runs
   for real, side effects included, which is the only honest way to
   report actual cardinalities for a language with side effects —
   under the same governance (budget, registry, CANCEL) as a normal
   submission. Bypasses the plan cache: profiling wants the full
   compile path and the algebraic plan. *)
let explain_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  let t0 = Unix.gettimeofday () in
  let deadline =
    match t.deadline_ms with
    | None -> infinity
    | Some ms -> t0 +. (float_of_int ms /. 1000.)
  in
  let budget =
    Budget.create
      ?deadline:(if Float.is_finite deadline then Some deadline else None)
      ?fuel:t.fuel ?max_delta:t.max_delta ()
  in
  let jid =
    register_job t sid ~deadline ~cancel:(Budget.cancel_token budget)
      ~started:t0
      ("EXPLAIN " ^ src)
  in
  let tr = if t.tracing then Some (Trace.create ()) else None in
  let flush_trace () =
    match tr with
    | Some tr ->
      Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
      push_trace t jid tr
    | None -> ()
  in
  let job () =
    Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
    Metrics.job_begin t.metrics ~parallel:false;
    Fun.protect ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:false)
    @@ fun () ->
    match
      locked s.slock (fun () ->
          let ctx = Engine.context s.engine in
          Core.Update.stats_reset ctx.Core.Context.delta_stats;
          ctx.Core.Context.apply_ns <- 0;
          Fun.protect
            ~finally:(fun () ->
              note_effects t ~jid ~sid ~src ~trace:(Option.map Trace.id tr) ctx)
          @@ fun () ->
          Engine.with_tracer s.engine tr (fun () ->
              Engine.with_budget s.engine (Some budget) (fun () ->
                  Xqb_store.Store.transactionally (Catalog.store t.catalog)
                    (fun () ->
                      let _, rendered = Xqb_algebra.Runner.analyze s.engine src in
                      rendered))))
    with
    | rendered ->
      flush_trace ();
      Ok rendered
    | exception e ->
      flush_trace ();
      let err = Service_error.classify e in
      Metrics.record_error t.metrics err.Service_error.kind;
      Error err
  in
  let on_abort e =
    unregister_job t jid;
    Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
  in
  match Scheduler.submit t.sched ~deadline ~on_abort ?trace:tr ~exclusive:true job with
  | fut -> (jid, fut)
  | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
    on_abort e;
    (jid, Scheduler.ready (Error (Service_error.classify e)))

let explain t sid src = await (snd (explain_job t sid src))

let cache_stats t = Plan_cache.stats t.cache

(* Wire [METRICS PROM]: the counters as a Prometheus text page. *)
let metrics_prometheus t =
  Metrics.to_prometheus ~cache:(Plan_cache.stats t.cache) t.metrics

let stats_json t =
  Metrics.to_json
    ~cache:(Plan_cache.stats t.cache)
    ~docs:(Catalog.list t.catalog)
    ~extra:[ ("inflight", inflight_json t) ]
    t.metrics

(* Stop the service. Without [deadline], drain: queued jobs still
   run to completion. With [deadline] (seconds), give queued +
   running work that long, then abandon the queue ([overloaded]
   futures) and cancel every in-flight budget so running jobs die at
   their next poll. *)
let shutdown ?deadline t =
  t.stopping <- true;
  (match t.watchdog with
  | Some th ->
    Thread.join th;
    t.watchdog <- None
  | None -> ());
  let cancel_inflight () =
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j -> Budget.request j.cancel Budget.Cancelled)
          t.jobs)
  in
  Scheduler.shutdown ?deadline ~on_deadline:cancel_inflight t.sched
