(* The query service: multi-client sessions over one shared store.

   Putting the pieces together:

   - every session wraps a [Core.Engine.t] sharing the catalog's
     store, so [fn:doc]/bound documents are loaded once and visible
     to all sessions, while functions and globals stay per-session;
   - prepared plans are cached across sessions ({!Plan_cache}),
     keyed on literal-aware whitespace-normalized source — a hit
     skips parse → normalize → static-check → rewrite entirely;
   - execution goes through the footprint-gated {!Scheduler}: every
     plan carries a static effects footprint
     ({!Core.Static.Footprint}) and jobs with provably disjoint
     footprints run concurrently — statically parallel-safe programs
     ({!Core.Static.prog_parallel_safe} — Pure *and* allocation-free)
     as before, but now also updating jobs over disjoint documents or
     subtrees. Inconclusive footprints (dynamic [fn:doc] URIs, upward
     axes, user functions) widen to ⊤ and serialize exactly like the
     old exclusive writer, with the paper's §4.1 runtime conflict
     check still validating every ∆ at apply time;
   - every job runs under a {!Xqb_governor.Budget}: the service-wide
     deadline / fuel / pending-∆ limits if configured, plus a cancel
     token always, so [CANCEL] works even on an unlimited service.
     Budget violations surface as structured {!Service_error}s
     ([timeout] / [cancelled]), admission control as [overloaded];
   - {!Metrics} aggregates per-query latency, queue depth, purity
     counts, plan-cache counters, applied-∆ counts and failed
     queries by taxonomy kind.

   Concurrency protocol, in one place:

   - session mutable state (globals, function table) is only touched
     (a) at submit time under the session lock (compile / install /
     fork) and (b) inside write-side jobs, which also take the
     session lock and additionally exclude every reader via the
     write lock;
   - read-side jobs evaluate in a [Context.fork_read] taken at
     submit time under the session lock, so they observe a coherent
     snapshot of the session and share nothing mutable with it (the
     fork carries the job's budget; [Engine.with_budget] installs it
     on the worker domain for the store layer);
   - the store is only mutated at snap-apply time (evaluation never
     touches it — §3.3, the basis of the whole scheme): concurrent
     writers *evaluate* in parallel under the footprint gate, while
     every ∆ application — and the WAL append recording it —
     serializes on the scheduler's global apply mutex
     ({!Scheduler.with_apply}, installed per-job as the context's
     [apply_wrap]), keeping journal transaction spans contiguous and
     WAL order equal to apply order. The [Always]-policy fsync wait
     happens *outside* the mutex, so concurrent writers share one
     group-commit fsync instead of queueing full syncs;
   - Effecting programs (nested snap semantics), EXPLAIN, document
     loads and checkpoints take a ⊤ footprint — fully exclusive —
     and keep the old path: whole-job [Store.transactionally] plus
     an inline durable flush, so a query killed mid-update leaves
     the store exactly as it found it even if nested snaps had
     already applied. On the concurrent-writer path the rollback
     unit shrinks to one top-level snap: the apply itself is
     transactional (a failure during apply rolls back before the WAL
     sees it), but a job that fails *after* its snap applied — e.g.
     a budget kill during result serialization — reports an error
     for an update that committed, the same guarantee class as a
     connection dropped between commit and acknowledgment. *)

module Engine = Core.Engine
module Budget = Xqb_governor.Budget
module Trace = Xqb_obs.Trace
module Durable = Xqb_wal.Durable
module Wcodec = Xqb_wal.Codec
module FP = Core.Static.Footprint
module Clock = Xqb_obs.Clock

type plan = {
  compiled : Engine.compiled;
  purity : Core.Static.purity;  (* of the body, for metrics *)
  parallel : bool;  (* Static.prog_parallel_safe: read-side eligible *)
  footprint : FP.t;
    (* static effects footprint: what the scheduler gates on.
       Computed against the catalog's documents at first compile;
       cached plans keep it (the var_docs question "is $v a document
       root?" is stable for a given URI — documents are load-once) *)
}

type session = {
  sid : int;
  engine : Engine.t;
  slock : Mutex.t;
  mutable docs_held : string list;
}

(* One in-flight (queued or running) governed job, registered so the
   wire [CANCEL], the deadline watchdog and [STATS] can reach it. *)
type inflight = {
  jid : int;
  jsid : int;
  cancel : Budget.cancel;
  started : float;  (* wall clock, for display only *)
  job_deadline : int;
    (* absolute, monotonic Clock ns ([max_int] when ungoverned) — the
       watchdog and the scheduler queue check share one scale that
       wall-clock steps (NTP, VM suspend) cannot move *)
  src : string;
}

type t = {
  catalog : Catalog.t;
  cache : plan Plan_cache.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  sessions : (int, session) Hashtbl.t;
  smutex : Mutex.t;
  mutable next_sid : int;
  seed : int;
  (* governance config (service-wide; applied to every query) *)
  deadline_ms : int option;
  fuel : int option;
  max_delta : int option;
  (* footprint scheduling: when off (bench E21's baseline), every
     non-parallel job takes a ⊤ footprint — the old single-writer
     exclusive gate — and commits through the inline durable path *)
  footprints : bool;
  (* in-flight job registry *)
  jobs : (int, inflight) Hashtbl.t;
  jmutex : Mutex.t;
  mutable next_jid : int;
  (* deadline watchdog (spawned only when a deadline is configured) *)
  mutable watchdog : Thread.t option;
  mutable stopping : bool;
  (* tracing: when on, every job records a per-query span trace
     (queue wait, lock wait, compile phases, execution, snap apply),
     kept in a bounded ring for the wire [TRACE] command. Off = each
     instrumentation point costs one branch. *)
  tracing : bool;
  tr_mutex : Mutex.t;
  mutable recent_traces : (int * Trace.t) list;  (* newest first, bounded *)
  (* effect observability: per-job ∆ statistics (wire DELTA) and the
     slow-effect log — write-side jobs whose apply phase exceeded
     [slow_ns] leave a ∆ summary + trace id in a bounded ring (wire
     SLOWLOG). *)
  slow_ns : int;
  sl_mutex : Mutex.t;
  mutable slowlog : slow_entry list;  (* newest first, bounded *)
  mutable last_delta : string option;  (* rendered ∆-stats JSON *)
  (* durability (leader side): the WAL/checkpoint manager, plus the
     journal seq of the first in-memory entry not yet appended to
     disk. [wal_seq] is only touched under the scheduler's apply
     mutex or a ⊤ footprint (catalog loads, checkpoints, Effecting
     jobs — which exclude every concurrent apply), so it needs no
     mutex of its own. *)
  durable : Durable.t option;
  mutable wal_seq : int;
  (* replica side: reject write traffic, apply shipped frames *)
  read_only : bool;
  repl : repl option;
}

and slow_entry = {
  sl_jid : int;
  sl_sid : int;
  sl_src : string;
  sl_apply_ns : int;
  sl_snaps : int;
  sl_requests : int;
  sl_trace : string option;
}

(* Replica state. [rm] guards every field; the polling thread and
   the wire STAT/ingest paths are the only writers. The entry buffer
   holds the tail of a transaction span whose remainder has not
   shipped yet (the leader's poll window can cut a span in half) —
   entries apply to the store only in complete spans, so a replica
   never serves a half-applied update. *)
and repl = {
  r_leader : string;  (* "host:port", or "" when pumped manually *)
  rm : Mutex.t;
  mutable r_received_lsn : int;  (* highest LSN accepted from the leader *)
  mutable r_applied_lsn : int;  (* highest LSN applied / registered *)
  mutable r_leader_lsn : int;  (* leader's last LSN as of the last SHIP *)
  mutable r_pending : (int * Xqb_store.Store.mj_entry) list;  (* oldest first *)
  mutable r_frames : int;  (* frames applied since boot *)
  mutable r_status : string;
  mutable r_last_apply : float;
  mutable r_thread : Thread.t option;
  mutable r_sock : Unix.file_descr option;
  mutable r_stop : bool;
}

let trace_ring_cap = 32
let slowlog_cap = 64

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The watchdog is belt-and-braces on top of the budget's own clock
   polls: it marks the cancel token of any overdue job, catching
   jobs that are stuck somewhere that never reaches a poll point
   (e.g. blocked behind the write lock). First reason wins, so a
   job that already died of its own deadline is unaffected. *)
let watchdog_loop t () =
  while not t.stopping do
    Thread.delay 0.02;
    let now = Clock.now_ns () in
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j ->
            if j.job_deadline <> max_int && now > j.job_deadline then
              Budget.request j.cancel Budget.Deadline)
          t.jobs)
  done

let create ?(domains = 4) ?(cache_capacity = 128) ?(seed = 0x5eed) ?deadline_ms
    ?fuel ?max_delta ?max_queue ?(tracing = false) ?(slow_apply_ms = 10)
    ?durability ?(replica = false) ?replica_of ?(footprint_scheduling = true) () =
  let replica = replica || replica_of <> None in
  if replica && durability <> None then
    failwith "a replica has no WAL of its own: --replica-of excludes --data-dir";
  (* Durable boot: recover the store (snapshot + WAL tail replay),
     hang the catalog off it, and (re)start the in-memory mutation
     journal — everything replayed is already on disk, so the WAL
     appender's cursor starts at seq 0 of a fresh journal. *)
  let durable, catalog =
    match durability with
    | None -> (None, Catalog.create ())
    | Some cfg ->
      let d, (rec_ : Durable.recovered) = Durable.recover cfg in
      let catalog = Catalog.create ~store:rec_.store () in
      List.iter
        (fun (uri, root, bytes) -> Catalog.register catalog ~uri ~root ~bytes)
        rec_.docs;
      Xqb_store.Store.journal_start rec_.store;
      (Some d, catalog)
  in
  let repl =
    if not replica then None
    else
      Some
        {
          r_leader = Option.value replica_of ~default:"";
          rm = Mutex.create ();
          r_received_lsn = 0;
          r_applied_lsn = 0;
          r_leader_lsn = 0;
          r_pending = [];
          r_frames = 0;
          r_status = "idle";
          r_last_apply = 0.;
          r_thread = None;
          r_sock = None;
          r_stop = false;
        }
  in
  let t =
    {
      catalog;
      cache = Plan_cache.create ~capacity:cache_capacity ();
      sched = Scheduler.create ~domains ?max_queue ();
      metrics = Metrics.create ();
      sessions = Hashtbl.create 16;
      smutex = Mutex.create ();
      next_sid = 1;
      seed;
      deadline_ms;
      fuel;
      max_delta;
      footprints = footprint_scheduling;
      jobs = Hashtbl.create 16;
      jmutex = Mutex.create ();
      next_jid = 1;
      watchdog = None;
      stopping = false;
      tracing;
      tr_mutex = Mutex.create ();
      recent_traces = [];
      slow_ns = slow_apply_ms * 1_000_000;
      sl_mutex = Mutex.create ();
      slowlog = [];
      last_delta = None;
      durable;
      wal_seq = 0;
      read_only = replica;
      repl;
    }
  in
  if deadline_ms <> None then t.watchdog <- Some (Thread.create (watchdog_loop t) ());
  t

let catalog t = t.catalog
let scheduler t = t.sched
let metrics t = t.metrics
let read_only t = t.read_only
let durability_json t = Option.map Durable.stats_json t.durable

(* -- durability (leader side) --------------------------------------- *)

(* Append the in-memory journal tail to the WAL and, under the Always
   policy, block until durable — this is the acknowledgment barrier:
   it runs after the snap applied but before the client sees OK, so
   recovery reproduces every acknowledged commit. Caller holds a ⊤
   footprint (exclusive jobs, loads, checkpoints), which excludes
   every concurrent apply — so [wal_seq] is stable. The concurrent-
   writer path commits through [writer_apply_wrap] instead. *)
let durable_commit t =
  match t.durable with
  | None -> ()
  | Some d ->
    let store = Catalog.store t.catalog in
    let entries = Xqb_store.Store.journal_entries_from store t.wal_seq in
    if entries <> [] then begin
      t.wal_seq <- t.wal_seq + List.length entries;
      ignore (Durable.commit_entries d entries)
    end

(* After a checkpoint the snapshot covers the whole journal: restart
   it so the in-memory list (and the seq counter feeding [wal_seq])
   doesn't grow without bound. Write lock held. *)
let after_checkpoint t =
  Xqb_store.Store.journal_start (Catalog.store t.catalog);
  t.wal_seq <- 0

let durable_maybe_checkpoint t =
  match t.durable with
  | None -> ()
  | Some d -> (
    match
      Durable.maybe_checkpoint d ~docs:(Catalog.roots t.catalog)
        (Catalog.store t.catalog)
    with
    | Some _ -> after_checkpoint t
    | None -> ())

(* The per-write-job durability hook: flush the journal tail (even on
   failure — an aborted span is a no-op on replay but keeps the audit
   trail complete), then maybe checkpoint. A disk error here surfaces
   as the job's error: the in-memory state has committed, but the
   client is never acknowledged a write the disk didn't take. *)
let durable_publish t =
  durable_commit t;
  durable_maybe_checkpoint t

(* The concurrent-writer commit path, installed per-job as the
   context's [apply_wrap]: each top-level snap's ∆ applies under the
   scheduler's global apply mutex — journal transaction spans stay
   contiguous and WAL byte order equals apply order — with the WAL
   append in the same critical section, and the [Always]-policy
   durability wait *outside* it, so writers blocked on fsync(2) share
   one group-commit leader pass instead of serializing full syncs.
   The apply runs under [Store.transactionally]: a conflict (§4.1
   R1–R7) or any other apply-time failure rolls the span back before
   its entries reach the WAL. Evaluation needs no rollback — it
   never mutates the store (§3.3); its only traces are fresh node
   allocations, unreachable from any document.

   No checkpoint here: a checkpoint resets the in-memory journal,
   which would orphan the allocation entries of writers still
   mid-evaluation. Checkpoints run only under a ⊤ footprint (loads,
   Effecting jobs, CHECKPOINT), where nothing else is in flight. *)
let writer_apply_wrap t apply =
  let pending =
    Scheduler.with_apply t.sched (fun () ->
        let store = Catalog.store t.catalog in
        Xqb_store.Store.transactionally store apply;
        match t.durable with
        | None -> None
        | Some d ->
          let entries = Xqb_store.Store.journal_entries_from store t.wal_seq in
          if entries = [] then None
          else begin
            t.wal_seq <- t.wal_seq + List.length entries;
            Some (d, Durable.append_entries d entries)
          end)
  in
  match pending with
  | Some (d, lsn) -> Durable.wait_durable d lsn
  | None -> ()

let checkpoint_now t =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d ->
    Scheduler.with_write t.sched (fun () ->
        durable_commit t;
        let lsn =
          Durable.checkpoint d ~docs:(Catalog.roots t.catalog)
            (Catalog.store t.catalog)
        in
        after_checkpoint t;
        Ok lsn)

(* Committed WAL frames for a replica, as one concatenated blob. *)
let ship_frames t ~from_lsn ~max =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d -> (
    match Durable.ship d ~from_lsn ~max with
    | Ok (last, frames) -> Ok (last, String.concat "" frames)
    | Error `Too_old ->
      Error "too-old: frames before the last checkpoint are gone; re-bootstrap from SNAPSHOT")

let snapshot_blob t =
  match t.durable with
  | None -> Error "service is not durable (started without --data-dir)"
  | Some d ->
    Ok
      (Scheduler.with_write t.sched (fun () ->
           durable_commit t;
           Durable.snapshot_blob d ~docs:(Catalog.roots t.catalog)
             (Catalog.store t.catalog)))

(* -- replication (replica side) ------------------------------------- *)

let replica_bootstrap t blob =
  match t.repl with
  | None -> Error "not a replica"
  | Some r -> (
    let store = Catalog.store t.catalog in
    if Xqb_store.Store.node_count store > 0 then
      Error "replica already holds data; bootstrap needs a fresh store"
    else
      match
        Scheduler.with_write t.sched (fun () -> Wcodec.restore store blob)
      with
      | lsn, docs ->
        List.iter
          (fun (uri, root, bytes) ->
            Catalog.register t.catalog ~uri ~root ~bytes)
          docs;
        locked r.rm (fun () ->
            r.r_received_lsn <- lsn;
            r.r_applied_lsn <- lsn;
            r.r_leader_lsn <- max r.r_leader_lsn lsn;
            r.r_last_apply <- Unix.gettimeofday ();
            r.r_status <- "bootstrapped");
        Ok lsn
      | exception Wcodec.Corrupt msg -> Error ("corrupt snapshot: " ^ msg))

(* Apply a batch of shipped frames. Already-seen LSNs are skipped
   (idempotent re-delivery); entries buffer until their transaction
   span completes, then apply behind the write lock so concurrent
   read queries never observe a half-applied update. Returns the
   number of frames applied (entries + doc registrations). *)
let replica_ingest t ~leader_lsn blob =
  match t.repl with
  | None -> Error "not a replica"
  | Some r ->
    let frames, valid = Wcodec.scan blob in
    if valid <> String.length blob then Error "corrupt frame batch"
    else
      locked r.rm (fun () ->
          r.r_leader_lsn <- max r.r_leader_lsn leader_lsn;
          let fresh =
            List.filter (fun (lsn, _, _) -> lsn > r.r_received_lsn) frames
          in
          let applied = ref 0 in
          let pending_rev = ref (List.rev r.r_pending) in
          let flush () =
            let pairs = List.rev !pending_rev in
            let complete, _ =
              Xqb_store.Journal.split_complete (List.map snd pairs)
            in
            let n = List.length complete in
            if n > 0 then begin
              Scheduler.with_write t.sched (fun () ->
                  Xqb_store.Journal.apply (Catalog.store t.catalog) complete);
              List.iteri
                (fun i (lsn, _) ->
                  if i < n then r.r_applied_lsn <- max r.r_applied_lsn lsn)
                pairs;
              r.r_frames <- r.r_frames + n;
              r.r_last_apply <- Unix.gettimeofday ();
              applied := !applied + n;
              pending_rev := List.rev (List.filteri (fun i _ -> i >= n) pairs)
            end
          in
          List.iter
            (fun (lsn, record, _) ->
              r.r_received_lsn <- lsn;
              match record with
              | Wcodec.R_entry e -> pending_rev := (lsn, e) :: !pending_rev
              | Wcodec.R_doc { uri; root; bytes } ->
                (* the leader appends the registration only after the
                   load's span committed, so the buffer is complete *)
                flush ();
                Catalog.register t.catalog ~uri ~root ~bytes;
                r.r_applied_lsn <- max r.r_applied_lsn lsn;
                r.r_frames <- r.r_frames + 1;
                r.r_last_apply <- Unix.gettimeofday ();
                incr applied)
            fresh;
          flush ();
          r.r_pending <- List.rev !pending_rev;
          r.r_status <- "streaming";
          Ok !applied)

let replica_stat_json t =
  match t.repl with
  | None -> "{\"replica\":false}"
  | Some r ->
    locked r.rm (fun () ->
        Printf.sprintf
          "{\"replica\":true,\"leader\":\"%s\",\"status\":\"%s\",\"applied_lsn\":%d,\"received_lsn\":%d,\"leader_lsn\":%d,\"lag\":%d,\"frames_applied\":%d,\"pending_entries\":%d,\"last_apply_age_s\":%s}"
          (Metrics.json_escape r.r_leader)
          (Metrics.json_escape r.r_status)
          r.r_applied_lsn r.r_received_lsn r.r_leader_lsn
          (max 0 (r.r_leader_lsn - r.r_applied_lsn))
          r.r_frames
          (List.length r.r_pending)
          (if r.r_last_apply = 0. then "null"
           else Printf.sprintf "%.3f" (Unix.gettimeofday () -. r.r_last_apply)))

(* [JOURNAL STAT]: in-memory journal length + the canonical store
   digest — the cross-node consistency check (leader, replicas and a
   recovered store all agree on it). Takes the read lock so the
   digest never observes a half-applied update. *)
let journal_stat_json t =
  (* the replica mutex is taken before the scheduler lock elsewhere
     (ingest holds [rm] across its write-side apply), so read it
     outside the read lock to keep the order consistent *)
  let lsn =
    match t.durable with
    | Some d -> Durable.last_lsn d
    | None -> (
      match t.repl with
      | Some r -> locked r.rm (fun () -> r.r_applied_lsn)
      | None -> 0)
  in
  Scheduler.with_read t.sched (fun () ->
      let store = Catalog.store t.catalog in
      Printf.sprintf
        "{\"recording\":%b,\"length\":%d,\"nodes\":%d,\"digest\":\"%s\",\"lsn\":%d}"
        (Xqb_store.Store.journal_active store)
        (Xqb_store.Store.journal_length store)
        (Xqb_store.Store.node_count store)
        (Wcodec.store_digest_hex store)
        lsn)

(* -- the replication client ----------------------------------------- *)

(* Poll loop behind `serve --replica-of HOST:PORT`: connect to the
   leader over the ordinary line protocol, bootstrap from a SNAPSHOT
   blob when the local store is empty, then SHIP committed frames
   forever (blobs travel base64 on the wire). Connection failures
   back off and reconnect; a `too-old` reply (the leader checkpointed
   past this replica's position) is terminal — an already-populated
   store cannot re-bootstrap, the operator restarts the replica. *)

let repl_poll_s = 0.02
let repl_batch = 512

exception Repl_stale

let parse_reply line =
  if String.length line >= 3 && String.sub line 0 3 = "OK " then
    Ok (Protocol.unescape (String.sub line 3 (String.length line - 3)))
  else if line = "OK" then Ok ""
  else Error line

let replication_loop t r host port () =
  let resolve () =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith ("cannot resolve host " ^ host))
  in
  let session () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        locked r.rm (fun () -> r.r_sock <- None);
        try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock (Unix.ADDR_INET (resolve (), port));
        locked r.rm (fun () ->
            r.r_sock <- Some sock;
            r.r_status <- "connected");
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        let rpc line =
          output_string oc line;
          output_char oc '\n';
          flush oc;
          parse_reply (input_line ic)
        in
        (if
           locked r.rm (fun () -> r.r_received_lsn) = 0
           && Xqb_store.Store.node_count (Catalog.store t.catalog) = 0
         then
           match rpc "SNAPSHOT" with
           | Ok payload -> (
             match replica_bootstrap t (Xqb_wal.B64.decode payload) with
             | Ok _ -> ()
             | Error e -> failwith e)
           | Error e -> failwith ("SNAPSHOT: " ^ e));
        while not r.r_stop do
          let from = locked r.rm (fun () -> r.r_received_lsn + 1) in
          match rpc (Printf.sprintf "SHIP %d %d" from repl_batch) with
          | Ok payload ->
            let leader_w, b64 =
              match String.index_opt payload ' ' with
              | None -> (payload, "")
              | Some i ->
                ( String.sub payload 0 i,
                  String.trim
                    (String.sub payload (i + 1) (String.length payload - i - 1))
                )
            in
            let leader_lsn =
              match int_of_string_opt leader_w with
              | Some l -> l
              | None -> failwith ("bad SHIP reply: " ^ payload)
            in
            if b64 = "" then begin
              locked r.rm (fun () ->
                  r.r_leader_lsn <- max r.r_leader_lsn leader_lsn;
                  if r.r_leader_lsn <= r.r_applied_lsn then
                    r.r_status <- "caught-up");
              Thread.delay repl_poll_s
            end
            else begin
              match replica_ingest t ~leader_lsn (Xqb_wal.B64.decode b64) with
              | Ok _ -> ()
              | Error e -> failwith e
            end
          | Error e ->
            let stale =
              (* "ERR too-old: ..." — substring match keeps the wire
                 format free to evolve *)
              let n = String.length e in
              let rec find i =
                i + 7 <= n && (String.sub e i 7 = "too-old" || find (i + 1))
              in
              find 0
            in
            if stale then raise Repl_stale else failwith ("SHIP: " ^ e)
        done)
  in
  let stale = ref false in
  while (not r.r_stop) && not !stale do
    try session () with
    | Repl_stale ->
      stale := true;
      locked r.rm (fun () ->
          r.r_status <-
            "stale: leader checkpointed past this replica; restart it with an empty store")
    | e ->
      if not r.r_stop then begin
        locked r.rm (fun () ->
            r.r_status <- "disconnected: " ^ Printexc.to_string e);
        Thread.delay 0.3
      end
  done

(* Start the polling thread (serve does this right after [create]
   when --replica-of was given). No-op for manually-pumped replicas
   (tests drive {!replica_ingest} directly). *)
let start_replication t =
  match t.repl with
  | Some r when r.r_leader <> "" && r.r_thread = None ->
    let host, port =
      match String.rindex_opt r.r_leader ':' with
      | Some i -> (
        let h = String.sub r.r_leader 0 i in
        let p = String.sub r.r_leader (i + 1) (String.length r.r_leader - i - 1) in
        match int_of_string_opt p with
        | Some p when h <> "" -> (h, p)
        | _ ->
          failwith
            (Printf.sprintf "bad --replica-of %S (expected HOST:PORT)" r.r_leader))
      | None ->
        failwith
          (Printf.sprintf "bad --replica-of %S (expected HOST:PORT)" r.r_leader)
    in
    r.r_thread <- Some (Thread.create (replication_loop t r host port) ())
  | _ -> ()

(* -- sessions ------------------------------------------------------- *)

let open_session t =
  locked t.smutex (fun () ->
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let engine =
        Engine.create ~seed:(t.seed + sid) ~store:(Catalog.store t.catalog) ()
      in
      (* fn:doc falls back to the shared catalog (lookup only) *)
      (Engine.context engine).Core.Context.doc_lookup <-
        Some (fun uri -> Catalog.find t.catalog uri);
      (* applied-∆ accounting; only non-empty ∆s are interesting *)
      (Engine.context engine).Core.Context.on_apply <-
        Some
          (fun delta _mode ->
            if delta <> [] then Metrics.record_delta t.metrics delta);
      Hashtbl.replace t.sessions sid
        { sid; engine; slock = Mutex.create (); docs_held = [] };
      sid)

let find_session t sid =
  match locked t.smutex (fun () -> Hashtbl.find_opt t.sessions sid) with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown session %d" sid)

let close_session t sid =
  match locked t.smutex (fun () ->
      let s = Hashtbl.find_opt t.sessions sid in
      Hashtbl.remove t.sessions sid;
      s)
  with
  | None -> ()
  | Some s ->
    locked s.slock (fun () ->
        List.iter (Catalog.release t.catalog) s.docs_held;
        s.docs_held <- [])

let session_count t = locked t.smutex (fun () -> Hashtbl.length t.sessions)

(* Load a document into the shared catalog (under the scheduler's
   write lock — loading parses XML into the shared store) and attach
   it to the session: registered for [fn:doc(uri)] and bound to
   [$uri]. Load-once: a second session attaching the same URI reuses
   the resident tree. *)
let load_document t sid ~uri xml =
  let s = find_session t sid in
  let root =
    match Catalog.acquire t.catalog uri with
    | Some root -> root
    | None when t.read_only ->
      failwith
        (Printf.sprintf
           "read-only replica: %S is not resident (documents replicate from the leader)"
           uri)
    | None ->
      Scheduler.with_write t.sched (fun () ->
          (* transactional so the load's journal entries form one
             span: recovery and replicas either get the whole
             document or none of it (and a parse failure rolls the
             partially-built tree back) *)
          let root =
            Xqb_store.Store.transactionally (Catalog.store t.catalog)
              (fun () -> Catalog.load t.catalog ~uri xml)
          in
          ignore (Catalog.acquire t.catalog uri);
          (match t.durable with
          | Some d ->
            durable_commit t;
            Durable.commit_doc d ~uri ~root ~bytes:(String.length xml);
            durable_maybe_checkpoint t
          | None -> ());
          root)
  in
  locked s.slock (fun () ->
      if not (List.mem uri s.docs_held) then s.docs_held <- uri :: s.docs_held;
      Core.Context.register_doc (Engine.context s.engine) uri root;
      Engine.bind_node s.engine uri root)

(* -- query submission ----------------------------------------------- *)

let error_message e = (Service_error.classify e).Service_error.message

(* Prepared plan for [src]: cache hit or full compile. On a hit the
   program's function declarations are still installed into the
   session (cheap), so cross-session hits behave like a local
   compile. Caller holds the session lock. *)
let prepare t s src =
  let key = Plan_cache.normalize_key src in
  match Plan_cache.find t.cache key with
  | Some plan ->
    (match (Engine.context s.engine).Core.Context.tracer with
    | Some tr -> Trace.instant tr "plan.cache.hit"
    | None -> ());
    Engine.install_functions s.engine plan.compiled;
    plan
  | None ->
    let compiled = Engine.compile s.engine src in
    (* host-bound free variables that name catalog documents: the
       service binds every loaded document to [$uri], so a variable
       that is a catalog URI *is* that document's root. Anything else
       widens to "any document" inside the analysis. *)
    let var_docs v = if Catalog.find t.catalog v <> None then Some v else None in
    let plan =
      {
        compiled;
        purity = Engine.body_purity compiled;
        parallel = Engine.parallel_safe compiled;
        footprint = Engine.footprint ~var_docs compiled;
      }
    in
    Plan_cache.add t.cache key plan;
    plan

(* -- the in-flight registry ----------------------------------------- *)

let register_job t sid ~deadline ~cancel ~started src =
  locked t.jmutex (fun () ->
      let jid = t.next_jid in
      t.next_jid <- jid + 1;
      let src =
        if String.length src <= 120 then src else String.sub src 0 120 ^ "…"
      in
      Hashtbl.replace t.jobs jid
        { jid; jsid = sid; cancel; started; job_deadline = deadline; src };
      jid)

let unregister_job t jid = locked t.jmutex (fun () -> Hashtbl.remove t.jobs jid)

(* Request cancellation of an in-flight job. True if the job was
   found (still queued or running); the job itself observes the
   token at its next budget poll and fails with [cancelled]. *)
let cancel t jid =
  match locked t.jmutex (fun () -> Hashtbl.find_opt t.jobs jid) with
  | None -> false
  | Some j ->
    Budget.request j.cancel Budget.Cancelled;
    true

let inflight_count t = locked t.jmutex (fun () -> Hashtbl.length t.jobs)

(* -- the recent-trace ring ------------------------------------------ *)

let push_trace t jid tr =
  locked t.tr_mutex (fun () ->
      let keep =
        List.filteri
          (fun i _ -> i < trace_ring_cap - 1)
          (List.filter (fun (j, _) -> j <> jid) t.recent_traces)
      in
      t.recent_traces <- (jid, tr) :: keep)

(* Chrome trace-event JSON for job [jid], or the most recent traced
   job when [jid] is [None]. *)
let trace_json t jid =
  locked t.tr_mutex (fun () ->
      match jid with
      | Some j ->
        Option.map
          (fun tr -> (j, Trace.to_chrome_json tr))
          (List.assoc_opt j t.recent_traces)
      | None -> (
        match t.recent_traces with
        | (j, tr) :: _ -> Some (j, Trace.to_chrome_json tr)
        | [] -> None))

(* -- effect observability ------------------------------------------- *)

(* Rendered ∆-statistics JSON for one write-side job: requests by
   kind, snap-depth histogram, conflicts checked, apply-phase wall
   time. This is the wire DELTA payload. *)
let delta_stats_json ~jid ~apply_ns (st : Core.Update.stats) =
  Printf.sprintf
    "{\"jid\":%d,\"snaps\":%d,\"requests\":{\"insert\":%d,\"delete\":%d,\"rename\":%d,\"set_value\":%d},\"total_requests\":%d,\"conflicts_checked\":%d,\"max_snap_depth\":%d,\"snap_depth_hist\":[%s],\"apply_ns\":%d}"
    jid st.Core.Update.snaps st.Core.Update.inserts st.Core.Update.deletes
    st.Core.Update.renames st.Core.Update.set_values
    (Core.Update.stats_requests st)
    st.Core.Update.conflicts_checked st.Core.Update.max_snap_depth
    (String.concat ","
       (Array.to_list (Array.map string_of_int st.Core.Update.depth_hist)))
    apply_ns

(* Called right after a write-side job finishes (session lock held):
   snapshot the job's ∆ statistics for the wire DELTA command, and
   ring-buffer a slow-effect entry when the apply phase crossed the
   threshold. *)
let note_effects t ~jid ~sid ~src ~trace ctx =
  let st = ctx.Core.Context.delta_stats in
  let apply_ns = ctx.Core.Context.apply_ns in
  let snaps = st.Core.Update.snaps in
  let requests = Core.Update.stats_requests st in
  let json = delta_stats_json ~jid ~apply_ns st in
  locked t.sl_mutex (fun () ->
      t.last_delta <- Some json;
      if apply_ns >= t.slow_ns && snaps > 0 then begin
        let entry =
          {
            sl_jid = jid;
            sl_sid = sid;
            sl_src =
              (if String.length src <= 120 then src
               else String.sub src 0 120 ^ "…");
            sl_apply_ns = apply_ns;
            sl_snaps = snaps;
            sl_requests = requests;
            sl_trace = trace;
          }
        in
        t.slowlog <-
          entry :: List.filteri (fun i _ -> i < slowlog_cap - 1) t.slowlog
      end)

(* Last write-side job's ∆ statistics; [None] before any updating
   query ran. *)
let delta_json t = locked t.sl_mutex (fun () -> t.last_delta)

let slowlog_json t =
  let entries = locked t.sl_mutex (fun () -> t.slowlog) in
  "["
  ^ String.concat ","
      (List.map
         (fun e ->
           Printf.sprintf
             "{\"jid\":%d,\"sid\":%d,\"apply_ns\":%d,\"snaps\":%d,\"requests\":%d,\"trace\":%s,\"src\":\"%s\"}"
             e.sl_jid e.sl_sid e.sl_apply_ns e.sl_snaps e.sl_requests
             (match e.sl_trace with
             | Some id -> Printf.sprintf "\"%s\"" (Metrics.json_escape id)
             | None -> "null")
             (Metrics.json_escape e.sl_src))
         entries)
  ^ "]"

let slowlog_length t = locked t.sl_mutex (fun () -> List.length t.slowlog)

let inflight_json t =
  let now = Unix.gettimeofday () in
  let entries =
    locked t.jmutex (fun () ->
        Hashtbl.fold
          (fun _ j acc ->
            Printf.sprintf "{\"jid\":%d,\"sid\":%d,\"running_ms\":%.0f,\"src\":\"%s\"}"
              j.jid j.jsid
              ((now -. j.started) *. 1e3)
              (Metrics.json_escape j.src)
            :: acc)
          t.jobs [])
  in
  "[" ^ String.concat "," entries ^ "]"

(* -- submission ----------------------------------------------------- *)

(* Map a future's exception side into the structured taxonomy. *)
let await fut =
  match Scheduler.await fut with
  | Ok r -> r
  | Error e -> Error (Service_error.classify e)

(* Submit a query; returns the job id (usable with [cancel]) and a
   future resolving to the serialized result or a structured error.
   Parallel-safe programs run concurrently on the scheduler's read
   side against a fork of the session taken now; everything else
   serializes on the write side under [Store.transactionally], so a
   query killed by its budget leaves the store unchanged. *)
let submit_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  let t0 = Unix.gettimeofday () in
  Metrics.record_queue_depth t.metrics (Scheduler.queue_depth t.sched);
  (* One tracer per job. Installed on the session engine only while
     the session lock is held (prepare + fork); a read-side fork
     copies it, so spans recorded by the fork on a worker domain land
     in this job's trace without the session ever sharing a tracer
     between two jobs. *)
  let tr = if t.tracing then Some (Trace.create ()) else None in
  match
    locked s.slock (fun () ->
        Engine.with_tracer s.engine tr (fun () ->
            let plan = prepare t s src in
            let fork =
              if plan.parallel then Some (Engine.fork_read s.engine) else None
            in
            (plan, fork)))
  with
  | exception e ->
    Metrics.record_compile_error t.metrics;
    let err = Service_error.classify e in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  | _plan, None when t.read_only ->
    (* purity gate doubles as the replica's write fence: anything not
       statically parallel-safe could mutate the store *)
    let err =
      Service_error.classify
        (Failure
           "read-only replica: updating/effecting queries must run on the leader")
    in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  | plan, fork ->
    (* two deadline scales, one boundary: the budget's own clock polls
       use the wall-clock seconds it was built around, while the
       scheduler queue check and the watchdog use monotonic Clock ns
       (immune to wall-clock steps). Both derive from --deadline-ms
       right here. *)
    let deadline =
      match t.deadline_ms with
      | None -> infinity
      | Some ms -> t0 +. (float_of_int ms /. 1000.)
    in
    let deadline_ns =
      match t.deadline_ms with
      | None -> max_int
      | Some ms -> Clock.now_ns () + (ms * 1_000_000)
    in
    let budget =
      Budget.create
        ?deadline:(if Float.is_finite deadline then Some deadline else None)
        ?fuel:t.fuel ?max_delta:t.max_delta ()
    in
    let jid =
      register_job t sid ~deadline:deadline_ns
        ~cancel:(Budget.cancel_token budget) ~started:t0 src
    in
    let finish ok =
      let latency_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      Metrics.record_query t.metrics ~purity:plan.purity ~parallel:plan.parallel
        ~ok ~latency_ns;
      match tr with
      | Some tr ->
        (* fold the job's span totals into the per-phase latency
           histograms and keep the trace for the wire [TRACE] *)
        Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
        push_trace t jid tr
      | None -> ()
    in
    let job () =
      Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
      Metrics.job_begin t.metrics ~parallel:plan.parallel;
      Fun.protect
        ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:plan.parallel)
      @@ fun () ->
      match
        match fork with
        | Some feng ->
          (* read side: forked context, snap-free evaluation.
             [run_readonly] re-forks internally; the fork inherits
             the session budget we install here. *)
          Engine.with_budget feng (Some budget) (fun () ->
              let v = Engine.run_readonly feng plan.compiled in
              Engine.serialize_with (Catalog.store t.catalog) v)
        | None -> (
          (* write side: the session itself, full snap semantics.
             The job's ∆ statistics and apply-phase wall time are
             snapshotted for DELTA / the slow-effect log even when it
             fails.

             Two commit disciplines. Non-Effecting jobs (at most one
             top-level apply per snap-wrapped global/body) take the
             concurrent path: evaluation runs in parallel with every
             footprint-disjoint job, and each snap's apply + WAL
             append serializes under [writer_apply_wrap] — the
             durable acknowledgment barrier moves inside the wrap,
             before this future resolves. Effecting jobs (nested
             snaps) hold a ⊤ footprint, so they keep the old
             exclusive discipline: whole-job [transactionally] (a
             budget kill rolls back even mid-way through nested
             applies) and the inline durable flush + checkpoint after
             (on failure it still flushes the aborted span, but its
             own errors must not mask the job's). *)
          let concurrent =
            t.footprints && plan.purity <> Core.Static.Effecting
          in
          match
            locked s.slock (fun () ->
              let ctx = Engine.context s.engine in
              Core.Update.stats_reset ctx.Core.Context.delta_stats;
              ctx.Core.Context.apply_ns <- 0;
              Fun.protect
                ~finally:(fun () ->
                  note_effects t ~jid ~sid ~src
                    ~trace:(Option.map Trace.id tr)
                    ctx)
              @@ fun () ->
              Engine.with_tracer s.engine tr (fun () ->
                  Engine.with_budget s.engine (Some budget) (fun () ->
                      if concurrent then begin
                        ctx.Core.Context.apply_wrap <-
                          Some (writer_apply_wrap t);
                        Fun.protect
                          ~finally:(fun () ->
                            ctx.Core.Context.apply_wrap <- None)
                          (fun () ->
                            let v =
                              Engine.run_compiled s.engine plan.compiled
                            in
                            Engine.serialize s.engine v)
                      end
                      else
                        Xqb_store.Store.transactionally
                          (Catalog.store t.catalog)
                          (fun () ->
                            let v =
                              Engine.run_compiled s.engine plan.compiled
                            in
                            Engine.serialize s.engine v))))
          with
          | out ->
            if not concurrent then durable_publish t;
            out
          | exception e ->
            if not concurrent then (try durable_publish t with _ -> ());
            raise e)
      with
      | out ->
        finish true;
        Ok out
      | exception e ->
        finish false;
        let err = Service_error.classify e in
        Metrics.record_error t.metrics err.Service_error.kind;
        Error err
    in
    (* Abandoned without running (queue-time expiry, shutdown drain):
       still counts as a failed query of the appropriate kind. *)
    let on_abort e =
      unregister_job t jid;
      finish false;
      Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
    in
    (* Both sides gate on the *inferred* footprint when footprint
       scheduling is on: a parallel-safe reader's footprint has no
       write regions (read/read never conflicts, so readers behave
       exactly as under the old read lock), but its read regions are
       now precise enough to overlap with writers on *other*
       documents. Effecting jobs and the baseline toggle degrade to
       the binary extremes — read-everything / ⊤ — which is the old
       purity gate verbatim. *)
    let footprint =
      if t.footprints && plan.purity <> Core.Static.Effecting then
        plan.footprint
      else if plan.parallel then FP.read_all
      else FP.top
    in
    (match
       Scheduler.submit t.sched ~deadline:deadline_ns ~on_abort ?trace:tr
         ~footprint ~exclusive:(not plan.parallel) job
     with
    | fut -> (jid, fut)
    | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
      on_abort e;
      (jid, Scheduler.ready (Error (Service_error.classify e))))

let submit t sid src = snd (submit_job t sid src)

(* Synchronous submit-and-await. *)
let query t sid src = await (submit t sid src)

(* EXPLAIN ANALYZE (wire [EXPLAIN]): compile through the algebraic
   [Runner] and execute with per-operator profiling, returning the
   annotated plan tree. Always on the write side — the query runs
   for real, side effects included, which is the only honest way to
   report actual cardinalities for a language with side effects —
   under the same governance (budget, registry, CANCEL) as a normal
   submission. Bypasses the plan cache: profiling wants the full
   compile path and the algebraic plan. *)
let explain_job t sid src :
    int * (string, Service_error.t) result Scheduler.future =
  let s = find_session t sid in
  if t.read_only then begin
    (* EXPLAIN executes for real, side effects included — never on a
       replica *)
    let err =
      Service_error.classify
        (Failure "read-only replica: EXPLAIN executes the query; run it on the leader")
    in
    Metrics.record_error t.metrics err.Service_error.kind;
    (0, Scheduler.ready (Error err))
  end
  else begin
  let t0 = Unix.gettimeofday () in
  let deadline =
    match t.deadline_ms with
    | None -> infinity
    | Some ms -> t0 +. (float_of_int ms /. 1000.)
  in
  let deadline_ns =
    match t.deadline_ms with
    | None -> max_int
    | Some ms -> Clock.now_ns () + (ms * 1_000_000)
  in
  let budget =
    Budget.create
      ?deadline:(if Float.is_finite deadline then Some deadline else None)
      ?fuel:t.fuel ?max_delta:t.max_delta ()
  in
  let jid =
    register_job t sid ~deadline:deadline_ns
      ~cancel:(Budget.cancel_token budget) ~started:t0
      ("EXPLAIN " ^ src)
  in
  let tr = if t.tracing then Some (Trace.create ()) else None in
  let flush_trace () =
    match tr with
    | Some tr ->
      Metrics.record_phase_totals t.metrics (Trace.phase_totals tr);
      push_trace t jid tr
    | None -> ()
  in
  let job () =
    Fun.protect ~finally:(fun () -> unregister_job t jid) @@ fun () ->
    Metrics.job_begin t.metrics ~parallel:false;
    Fun.protect ~finally:(fun () -> Metrics.job_end t.metrics ~parallel:false)
    @@ fun () ->
    let run () =
      locked s.slock (fun () ->
          let ctx = Engine.context s.engine in
          Core.Update.stats_reset ctx.Core.Context.delta_stats;
          ctx.Core.Context.apply_ns <- 0;
          Fun.protect
            ~finally:(fun () ->
              note_effects t ~jid ~sid ~src ~trace:(Option.map Trace.id tr) ctx)
          @@ fun () ->
          Engine.with_tracer s.engine tr (fun () ->
              Engine.with_budget s.engine (Some budget) (fun () ->
                  Xqb_store.Store.transactionally (Catalog.store t.catalog)
                    (fun () ->
                      let _, rendered = Xqb_algebra.Runner.analyze s.engine src in
                      rendered))))
    in
    match
      match run () with
      | out ->
        durable_publish t;
        out
      | exception e ->
        (try durable_publish t with _ -> ());
        raise e
    with
    | rendered ->
      flush_trace ();
      Ok rendered
    | exception e ->
      flush_trace ();
      let err = Service_error.classify e in
      Metrics.record_error t.metrics err.Service_error.kind;
      Error err
  in
  let on_abort e =
    unregister_job t jid;
    Metrics.record_error t.metrics (Service_error.classify e).Service_error.kind
  in
  match
    Scheduler.submit t.sched ~deadline:deadline_ns ~on_abort ?trace:tr
      ~exclusive:true job
  with
  | fut -> (jid, fut)
  | exception ((Scheduler.Overloaded | Scheduler.Shut_down) as e) ->
    on_abort e;
    (jid, Scheduler.ready (Error (Service_error.classify e)))
  end

let explain t sid src = await (snd (explain_job t sid src))

let cache_stats t = Plan_cache.stats t.cache

(* Concurrent-writer gauges off the footprint gate: how many jobs are
   admitted right now (and how many of those hold write regions), plus
   the high-water marks since boot — the observable proof that
   disjoint writers actually overlap. *)
let concurrency_json t =
  let g = Scheduler.gate t.sched in
  Printf.sprintf
    "{\"footprint_scheduling\":%b,\"running\":%d,\"running_writers\":%d,\"peak\":%d,\"writer_peak\":%d}"
    t.footprints (Rwlock.running g)
    (Rwlock.running_writers g)
    (Rwlock.peak g) (Rwlock.writer_peak g)

(* Wire [METRICS PROM]: the counters as a Prometheus text page, with
   the footprint-gate gauges, the durability gauges (WAL bytes,
   fsyncs, checkpoint age, LSNs) and replica lag appended when the
   corresponding mode is on. *)
let metrics_prometheus t =
  let base = Metrics.to_prometheus ~cache:(Plan_cache.stats t.cache) t.metrics in
  let conc =
    let g = Scheduler.gate t.sched in
    String.concat ""
      [
        "# TYPE xqbang_gate_inflight gauge\n";
        Printf.sprintf "xqbang_gate_inflight{side=\"all\"} %d\n"
          (Rwlock.running g);
        Printf.sprintf "xqbang_gate_inflight{side=\"writer\"} %d\n"
          (Rwlock.running_writers g);
        "# TYPE xqbang_gate_inflight_peak gauge\n";
        Printf.sprintf "xqbang_gate_inflight_peak{side=\"all\"} %d\n"
          (Rwlock.peak g);
        Printf.sprintf "xqbang_gate_inflight_peak{side=\"writer\"} %d\n"
          (Rwlock.writer_peak g);
      ]
  in
  let base = base ^ conc in
  let dur =
    match t.durable with Some d -> Durable.stats_prometheus d | None -> ""
  in
  let rep =
    match t.repl with
    | None -> ""
    | Some r ->
      locked r.rm (fun () ->
          String.concat ""
            [
              "# TYPE xqbang_replica_applied_lsn gauge\n";
              Printf.sprintf "xqbang_replica_applied_lsn %d\n" r.r_applied_lsn;
              "# TYPE xqbang_replica_leader_lsn gauge\n";
              Printf.sprintf "xqbang_replica_leader_lsn %d\n" r.r_leader_lsn;
              "# TYPE xqbang_replica_lag_frames gauge\n";
              Printf.sprintf "xqbang_replica_lag_frames %d\n"
                (max 0 (r.r_leader_lsn - r.r_applied_lsn));
              "# TYPE xqbang_replica_frames_applied_total counter\n";
              Printf.sprintf "xqbang_replica_frames_applied_total %d\n"
                r.r_frames;
            ])
  in
  base ^ dur ^ rep

let stats_json t =
  let extra =
    [ ("concurrency", concurrency_json t); ("inflight", inflight_json t) ]
  in
  let extra =
    match durability_json t with
    | Some j -> ("durability", j) :: extra
    | None -> extra
  in
  let extra =
    match t.repl with
    | None -> extra
    | Some _ -> ("replica", replica_stat_json t) :: extra
  in
  Metrics.to_json
    ~cache:(Plan_cache.stats t.cache)
    ~docs:(Catalog.list t.catalog)
    ~extra t.metrics

(* Stop the service. Without [deadline], drain: queued jobs still
   run to completion. With [deadline] (seconds), give queued +
   running work that long, then abandon the queue ([overloaded]
   futures) and cancel every in-flight budget so running jobs die at
   their next poll. *)
let shutdown ?deadline t =
  t.stopping <- true;
  (* stop the replication client first: close its socket to unblock a
     read in flight, then join *)
  (match t.repl with
  | Some r ->
    r.r_stop <- true;
    (match locked r.rm (fun () -> r.r_sock) with
    | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (match r.r_thread with
    | Some th ->
      Thread.join th;
      r.r_thread <- None
    | None -> ())
  | None -> ());
  (match t.watchdog with
  | Some th ->
    Thread.join th;
    t.watchdog <- None
  | None -> ());
  let cancel_inflight () =
    locked t.jmutex (fun () ->
        Hashtbl.iter
          (fun _ j -> Budget.request j.cancel Budget.Cancelled)
          t.jobs)
  in
  Scheduler.shutdown ?deadline ~on_deadline:cancel_inflight t.sched;
  (* the pool is drained: one final fsync and the WAL closes *)
  match t.durable with Some d -> Durable.close d | None -> ()
