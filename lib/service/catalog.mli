(** Shared document catalog: one store for the whole service,
    load-once documents, per-session refcounts. Loads mutate the
    shared store and must run under the scheduler's write lock; the
    registry itself is internally synchronized. *)

type t

val create : ?store:Xqb_store.Store.t -> unit -> t
val store : t -> Xqb_store.Store.t

(** Parse and load [xml] under [uri] unless already resident; returns
    the document root either way (initial refcount 0). Caller must
    hold the scheduler's write lock when this can actually load. *)
val load : t -> uri:string -> string -> Xqb_store.Store.node_id

(** Register an already-resident tree under [uri] (refcount 0) — the
    durable layer's recovery and replica doc-shipping path, where the
    nodes were rebuilt by snapshot restore / journal replay rather
    than parsed here. Replaces any existing entry for [uri]. *)
val register : t -> uri:string -> root:Xqb_store.Store.node_id -> bytes:int -> unit

val find : t -> string -> Xqb_store.Store.node_id option

(** Take a reference; [None] when the URI is not resident. *)
val acquire : t -> string -> Xqb_store.Store.node_id option

(** Drop a reference; the registry entry is removed at zero. *)
val release : t -> string -> unit

val refcount : t -> string -> int

(** [(uri, refcount, bytes)] for each resident document. *)
val list : t -> (string * int * int) list

(** [(uri, root, bytes)] for each resident document — what a durable
    snapshot persists (and {!register} restores). *)
val roots : t -> (string * int * int) list
