(** Shared document catalog: one store for the whole service,
    load-once documents, per-session refcounts. Loads mutate the
    shared store and must run under the scheduler's write lock; the
    registry itself is internally synchronized. *)

type t

val create : ?store:Xqb_store.Store.t -> unit -> t
val store : t -> Xqb_store.Store.t

(** Parse and load [xml] under [uri] unless already resident; returns
    the document root either way (initial refcount 0). Caller must
    hold the scheduler's write lock when this can actually load. *)
val load : t -> uri:string -> string -> Xqb_store.Store.node_id

val find : t -> string -> Xqb_store.Store.node_id option

(** Take a reference; [None] when the URI is not resident. *)
val acquire : t -> string -> Xqb_store.Store.node_id option

(** Drop a reference; the registry entry is removed at zero. *)
val release : t -> string -> unit

val refcount : t -> string -> int

(** [(uri, refcount, bytes)] for each resident document. *)
val list : t -> (string * int * int) list
