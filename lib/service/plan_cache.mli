(** Bounded LRU cache of prepared query plans keyed on
    whitespace-normalized source. Thread-safe. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val create : ?capacity:int -> unit -> 'a t

(** Collapse whitespace runs so reformatted repeats of a query still
    hit the cache — except inside string/attribute literals (their
    spelling is the value: ['a b'] and ['a  b'] must not share a
    plan) and inside [(: ... :)] comments, which are both preserved
    verbatim. Honors the lexer's quote-doubling escapes and nested
    comments. *)
val normalize_key : string -> string

(** Lookup by (already normalized) key; counts a hit or miss and
    refreshes recency. *)
val find : 'a t -> string -> 'a option

(** Insert, evicting the least-recently-used entry when full. *)
val add : 'a t -> string -> 'a -> unit

val stats : 'a t -> stats
