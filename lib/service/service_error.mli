(** Structured error taxonomy for the service layer: every failed
    query is one of five kinds, surfaced on the wire as
    [ERR [kind] message] and counted per-kind in {!Metrics}. *)

type kind =
  | Timeout  (** own budget exhausted (deadline / fuel / ∆ cap) or queue-time deadline expired *)
  | Cancelled  (** wire [CANCEL], or shutdown cancelling in-flight work *)
  | Overloaded  (** admission control rejected it, or the service is shut down *)
  | Conflict  (** ∆ failed the conflict-detection rules *)
  | Dynamic  (** the query's own fault: compile / dynamic / update errors *)

type t = { kind : kind; message : string }

val kind_to_string : kind -> string
val make : kind -> string -> t

(** ["[kind] message"]. *)
val to_string : t -> string

(** Map an exception escaping a job (or a submission) to its kind. *)
val classify : exn -> t
