(** Service observability: query counts by purity class and
    scheduling side, latency percentiles (fixed-footprint log-bucketed
    histograms, exact for the first 512 samples), per-phase latency
    breakdowns, scheduler queue depth, applied-∆ accounting.
    Thread-safe; dumped as JSON. *)

type t

val create : unit -> t

val record_query :
  t ->
  purity:Core.Static.purity ->
  parallel:bool ->
  ok:bool ->
  latency_ns:float ->
  unit

(** A submission rejected at compile time (no purity class). *)
val record_compile_error : t -> unit

(** Count a failed query against its taxonomy kind (the [errors]
    total is maintained by {!record_query} / {!record_compile_error};
    this is only the breakdown). *)
val record_error : t -> Service_error.kind -> unit

(** Per-kind failed-query counts, in a fixed kind order. *)
val errors_by_kind : t -> (Service_error.kind * int) list

val record_queue_depth : t -> int -> unit

(** One pipeline-phase observation: span name, nanoseconds. *)
val record_phase : t -> string -> float -> unit

(** Fold a traced job's {!Xqb_obs.Trace.phase_totals} into the
    per-phase histograms. *)
val record_phase_totals : t -> (string * int) list -> unit

(** Wire into a session engine's [Context.on_apply]. *)
val record_delta : t -> Core.Update.delta -> unit

(** Bracket a job's execution (lock already held) to maintain the
    in-flight gauges. *)
val job_begin : t -> parallel:bool -> unit

val job_end : t -> parallel:bool -> unit

(** [(queries, parallel, exclusive, errors)]. *)
val counts : t -> int * int * int * int

(** Peak concurrent jobs [(read side, write side)]. The read-side
    peak exceeding 1 is direct evidence Pure queries overlapped. *)
val max_inflight : t -> int * int

val json_escape : string -> string

(** [extra] is appended to the object verbatim as pre-rendered
    [key:json] members (the service adds its in-flight job listing). *)
val to_json :
  ?cache:Plan_cache.stats ->
  ?docs:(string * int * int) list ->
  ?extra:(string * string) list ->
  t ->
  string

(** The same counters in the Prometheus text exposition format
    (counters as [_total], latency / per-phase distributions as
    summaries with quantile labels) — the wire [METRICS PROM]
    payload. *)
val to_prometheus : ?cache:Plan_cache.stats -> t -> string
