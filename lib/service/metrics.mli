(** Service observability: query counts by purity class and
    scheduling side, latency percentiles (fixed-footprint log-bucketed
    histograms, exact for the first 512 samples), per-phase latency
    breakdowns, scheduler queue depth, applied-∆ accounting.
    Thread-safe; dumped as JSON. *)

type t

(** [windows] (default true) maintains rolling 1s/10s/60s views of
    the query stream (rate, windowed percentiles, error and
    SLO-violation fractions) alongside the since-boot counters;
    [false] is the telemetry-off baseline of bench E22. The SLO
    targets drive the [slow] classification and burn-rate gauges:
    [slo_p99_ms] (default 250) is the latency target, [slo_err_pct]
    (default 1) the allowed error percentage. *)
val create :
  ?windows:bool -> ?slo_p99_ms:float -> ?slo_err_pct:float -> unit -> t

(** [(slo_p99_ms, slo_err_pct)]. *)
val slo : t -> float * float

val record_query :
  t ->
  purity:Core.Static.purity ->
  parallel:bool ->
  ok:bool ->
  latency_ns:float ->
  unit

(** A submission rejected at compile time (no purity class). *)
val record_compile_error : t -> unit

(** Count a failed query against its taxonomy kind (the [errors]
    total is maintained by {!record_query} / {!record_compile_error};
    this is only the breakdown). *)
val record_error : t -> Service_error.kind -> unit

(** Per-kind failed-query counts, in a fixed kind order. *)
val errors_by_kind : t -> (Service_error.kind * int) list

val record_queue_depth : t -> int -> unit

(** One pipeline-phase observation: span name, nanoseconds. *)
val record_phase : t -> string -> float -> unit

(** Fold a traced job's {!Xqb_obs.Trace.phase_totals} into the
    per-phase histograms. *)
val record_phase_totals : t -> (string * int) list -> unit

(** Wire into a session engine's [Context.on_apply]. *)
val record_delta : t -> Core.Update.delta -> unit

(** Bracket a job's execution (lock already held) to maintain the
    in-flight gauges. *)
val job_begin : t -> parallel:bool -> unit

val job_end : t -> parallel:bool -> unit

(** [(queries, parallel, exclusive, errors)]. *)
val counts : t -> int * int * int * int

(** Peak concurrent jobs [(read side, write side)]. The read-side
    peak exceeding 1 is direct evidence Pure queries overlapped. *)
val max_inflight : t -> int * int

val json_escape : string -> string

(** [extra] is appended to the object verbatim as pre-rendered
    [key:json] members (the service adds its in-flight job listing). *)
val to_json :
  ?cache:Plan_cache.stats ->
  ?docs:(string * int * int) list ->
  ?extra:(string * string) list ->
  t ->
  string

(** Append the same counters to a shared {!Xqb_obs.Prom} page
    (counters as [_total] with [# HELP]/[# TYPE], latency /
    per-phase distributions as summaries, rolling windows and SLO
    burn rates as gauges). The service composes the full METRICS
    PROM payload from this plus the WAL / gate / replica
    contributions on the same emitter. *)
val to_prom : ?cache:Plan_cache.stats -> t -> Xqb_obs.Prom.t -> unit

(** Rolling-window snapshots + SLO targets as one JSON object (the
    STATS ["windows"] member). *)
val windows_json : t -> string

(** [(window name, snapshot)] for each rolling window ([[]] when
    windows are off). *)
val window_snaps : t -> (string * Xqb_obs.Window.snap) list
