(** The newline-delimited request protocol behind [xqbang serve].
    See docs/SERVICE.md for the grammar. *)

type request =
  | Open
  | Close of int
  | Load of int * string * string  (** sid, uri, path *)
  | Query of int * string
  | Explain of int * string  (** sid, query: EXPLAIN ANALYZE *)
  | Cancel of int  (** job id *)
  | Trace of int option  (** job id; [None] = most recent traced job *)
  | Stats
  | Delta  (** last write-side job's ∆ statistics *)
  | Slowlog  (** the slow-effect log *)
  | Metrics_prom  (** Prometheus text exposition *)
  | Health  (** health status + machine-readable reasons *)
  | Events of int * string option  (** tail length, min severity name *)
  | Journal_stat  (** in-memory journal length + store digest *)
  | Replica_stat  (** replica LSNs / lag *)
  | Checkpoint  (** force a snapshot now *)
  | Ship of int * int * string option
      (** from_lsn, max frames, replica id: replica pull *)
  | Snapshot  (** full-state blob for replica bootstrap *)
  | Profile of [ `Start | `Stop | `Dump | `Dump_json | `Stat ]
      (** the continuous sampling profiler (process-global) *)
  | Quit

val parse : string -> (request, string) result

(** Two-character escapes \n \r \\ for one-line payloads. *)
val escape : string -> string

val unescape : string -> string

(** ["OK " ^ escape payload] / ["ERR " ^ escape payload]. *)
val ok : string -> string

val err : string -> string

(** ["ERR [kind] message"] for classified query errors. *)
val err_of : Service_error.t -> string
