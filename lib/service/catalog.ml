(* The shared document catalog: one store for the whole service, each
   document parsed and loaded exactly once, sessions holding
   references. A session acquiring an already-loaded URI reuses the
   existing tree (load-once); when the last reference is released the
   registry entry is dropped. The store itself never frees nodes
   (§3.1's detach semantics — detached trees stay queryable), so
   release detaches nothing; it only makes the URI available for a
   fresh load.

   Loading parses XML into the shared store, i.e. it *mutates* shared
   state: the service performs loads under the scheduler's write
   lock. The registry itself has its own small mutex so lookups from
   read-side queries are safe. *)

module Store = Xqb_store.Store

type entry = {
  root : Store.node_id;
  mutable refcount : int;
  bytes : int;  (* source size, for the stats dump *)
}

type t = {
  store : Store.t;
  mutex : Mutex.t;
  docs : (string, entry) Hashtbl.t;
}

let create ?store () =
  let store = match store with Some s -> s | None -> Store.create () in
  { store; mutex = Mutex.create (); docs = Hashtbl.create 8 }

let store t = t.store

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Load [xml] under [uri] unless already resident; returns the
   document root either way. The initial refcount is 0 — callers
   [acquire] separately. Must be called with no concurrent readers
   on the store (the service holds the write lock). *)
let load t ~uri xml =
  match locked t (fun () -> Hashtbl.find_opt t.docs uri) with
  | Some e -> e.root
  | None ->
    let root = Store.load_string t.store xml in
    locked t (fun () ->
        match Hashtbl.find_opt t.docs uri with
        | Some e -> e.root  (* lost a race; the duplicate tree is unreachable *)
        | None ->
          Hashtbl.replace t.docs uri
            { root; refcount = 0; bytes = String.length xml };
          root)

(* Recovery / replication: the tree is already in the store (snapshot
   restore or journal replay); just record the registration. *)
let register t ~uri ~root ~bytes =
  locked t (fun () -> Hashtbl.replace t.docs uri { root; refcount = 0; bytes })

let find t uri = locked t (fun () -> Option.map (fun e -> e.root) (Hashtbl.find_opt t.docs uri))

(* Take a reference; returns the root if resident. *)
let acquire t uri =
  locked t (fun () ->
      match Hashtbl.find_opt t.docs uri with
      | Some e ->
        e.refcount <- e.refcount + 1;
        Some e.root
      | None -> None)

(* Drop a reference; the entry disappears when the count reaches 0. *)
let release t uri =
  locked t (fun () ->
      match Hashtbl.find_opt t.docs uri with
      | Some e ->
        e.refcount <- e.refcount - 1;
        if e.refcount <= 0 then Hashtbl.remove t.docs uri
      | None -> ())

let refcount t uri =
  locked t (fun () ->
      match Hashtbl.find_opt t.docs uri with Some e -> e.refcount | None -> 0)

(* (uri, refcount, bytes) for every resident document. *)
let list t =
  locked t (fun () ->
      Hashtbl.fold (fun uri e acc -> (uri, e.refcount, e.bytes) :: acc) t.docs [])

(* (uri, root, bytes) — the registrations a snapshot persists. *)
let roots t =
  locked t (fun () ->
      Hashtbl.fold (fun uri e acc -> (uri, e.root, e.bytes) :: acc) t.docs [])
