(* The service's structured error taxonomy. Every failed query is
   classified into one of five kinds so clients (and Metrics) can
   tell governance outcomes apart from plain query errors:

   - [Timeout]    the query's own budget ran out (deadline, fuel,
                  pending-∆ cap) or its queue-time deadline expired
                  before a worker picked it up;
   - [Cancelled]  somebody asked for it to stop (wire CANCEL, or
                  shutdown cancelling in-flight work);
   - [Overloaded] the service refused or abandoned the work for its
                  own protection (admission control, submit after
                  shutdown);
   - [Conflict]   the ∆ failed the paper's conflict-detection rules;
   - [Dynamic]    everything the query did to itself: compile
                  errors, dynamic errors, update errors. *)

type kind = Timeout | Cancelled | Overloaded | Conflict | Dynamic

type t = { kind : kind; message : string }

let kind_to_string = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Overloaded -> "overloaded"
  | Conflict -> "conflict"
  | Dynamic -> "dynamic"

let make kind message = { kind; message }

let to_string e = Printf.sprintf "[%s] %s" (kind_to_string e.kind) e.message

let classify = function
  | Xqb_governor.Budget.Budget_exceeded r ->
    let kind =
      match r with
      | Xqb_governor.Budget.Cancelled -> Cancelled
      | Deadline | Fuel | Delta_limit -> Timeout
    in
    { kind; message = Xqb_governor.Budget.reason_to_string r }
  | Scheduler.Expired_in_queue ->
    { kind = Timeout; message = "deadline expired while queued" }
  | Scheduler.Overloaded ->
    { kind = Overloaded; message = "queue full, submission rejected" }
  | Scheduler.Shut_down ->
    { kind = Overloaded; message = "service is shut down" }
  | Core.Conflict.Conflict_error c ->
    { kind = Conflict; message = "update conflict: " ^ Core.Conflict.to_string c }
  | Core.Engine.Compile_error m -> { kind = Dynamic; message = m }
  | Xqb_xdm.Errors.Dynamic_error (code, m) ->
    { kind = Dynamic; message = Printf.sprintf "dynamic error [%s] %s" code m }
  | Xqb_store.Store.Update_error m ->
    { kind = Dynamic; message = "update error: " ^ m }
  | Invalid_argument m | Failure m -> { kind = Dynamic; message = m }
  | e -> { kind = Dynamic; message = Printexc.to_string e }
