(* The newline-delimited request protocol behind `xqbang serve`.

   Requests (one per line; keywords case-insensitive):

     OPEN                          open a session       -> OK <sid>
     CLOSE <sid>                   close a session      -> OK closed
     LOAD <sid> <uri> <path>       load + attach a doc  -> OK loaded <uri>
     QUERY <sid> <query...>        run a query          -> OK <result> | ERR [kind] <msg>
     EXPLAIN <sid> <query...>      EXPLAIN ANALYZE      -> OK <annotated plan> | ERR ...
     CANCEL <job id>               cancel a running job -> OK cancelled | ERR ...
     TRACE [<job id>|LAST]         Chrome trace JSON    -> OK <json> | ERR ...
     STATS                         metrics dump         -> OK <json>
     DELTA                         last job's Delta statistics -> OK <json> | ERR ...
     SLOWLOG                       slow-effect log      -> OK <json array>
     METRICS [PROM]                Prometheus text page -> OK <text>
     HEALTH                        ok|degraded|critical + reasons -> OK <json>
     EVENTS [TAIL n] [LEVEL l]     recent event-log records -> OK <json array>
     JOURNAL STAT                  journal length + store digest -> OK <json>
     REPLICA STAT                  replica LSNs and lag -> OK <json>
     CHECKPOINT                    force a snapshot     -> OK <lsn> | ERR ...
     SHIP <from_lsn> [<max>] [<replica id>]
                                   committed WAL frames -> OK <last_lsn> <b64> | ERR ...
     SNAPSHOT                      bootstrap snapshot   -> OK <b64> | ERR ...
     PROFILE START|STOP|DUMP [JSON]|STAT
                                   continuous profiler: arm/disarm the
                                   sampler, folded-stack dump, status -> OK ...
     QUIT                          end the connection   -> OK bye

   Query text is the rest of the line with the two-character escapes
   \n \r \\ decoded, so multi-line queries fit on one request line.
   Replies are a single line: "OK " or "ERR " followed by the
   escaped payload. *)

type request =
  | Open
  | Close of int
  | Load of int * string * string  (* sid, uri, path *)
  | Query of int * string
  | Explain of int * string  (* sid, query: EXPLAIN ANALYZE *)
  | Cancel of int  (* job id, as reported asynchronously-submitted *)
  | Trace of int option  (* job id; None = most recent traced job *)
  | Stats
  | Delta  (* last write-side job's ∆ statistics *)
  | Slowlog  (* the slow-effect log *)
  | Metrics_prom  (* Prometheus text exposition *)
  | Health  (* ok|degraded|critical + machine-readable reasons *)
  | Events of int * string option
    (* tail length, minimum severity name (validated at parse) *)
  | Journal_stat  (* in-memory journal length + store digest *)
  | Replica_stat  (* replica LSNs / lag *)
  | Checkpoint  (* force a snapshot now *)
  | Ship of int * int * string option
    (* from_lsn, max frames, replica id: replica pull. The id lets
       the leader track per-replica shipped/acked positions. *)
  | Snapshot  (* full-state blob for replica bootstrap *)
  | Profile of [ `Start | `Stop | `Dump | `Dump_json | `Stat ]
    (* the continuous sampling profiler (process-global) *)
  | Quit

(* -- one-line escaping ---------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let ok payload = "OK " ^ escape payload
let err payload = "ERR " ^ escape payload

(* Classified query errors carry their taxonomy kind on the wire:
   "ERR [timeout] deadline exceeded". Protocol-level errors (bad
   request syntax) keep the plain [err] form. *)
let err_of (e : Service_error.t) = "ERR " ^ escape (Service_error.to_string e)

(* -- parsing -------------------------------------------------------- *)

(* Split off the first whitespace-delimited word. *)
let split_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let parse_sid word =
  match int_of_string_opt word with
  | Some sid -> Ok sid
  | None -> Error (Printf.sprintf "expected a session id, got %S" word)

let parse line : (request, string) result =
  let keyword, rest = split_word line in
  match String.uppercase_ascii keyword with
  | "OPEN" -> Ok Open
  | "CLOSE" -> Result.map (fun sid -> Close sid) (parse_sid rest)
  | "LOAD" -> (
    let sid_w, rest = split_word rest in
    let uri, path = split_word rest in
    match parse_sid sid_w with
    | Error e -> Error e
    | Ok sid ->
      if uri = "" || path = "" then Error "LOAD expects: LOAD <sid> <uri> <path>"
      else Ok (Load (sid, uri, path)))
  | "QUERY" -> (
    let sid_w, rest = split_word rest in
    match parse_sid sid_w with
    | Error e -> Error e
    | Ok sid ->
      if rest = "" then Error "QUERY expects: QUERY <sid> <query text>"
      else Ok (Query (sid, unescape rest)))
  | "EXPLAIN" -> (
    let sid_w, rest = split_word rest in
    match parse_sid sid_w with
    | Error e -> Error e
    | Ok sid ->
      if rest = "" then Error "EXPLAIN expects: EXPLAIN <sid> <query text>"
      else Ok (Explain (sid, unescape rest)))
  | "CANCEL" -> (
    match int_of_string_opt rest with
    | Some jid -> Ok (Cancel jid)
    | None -> Error (Printf.sprintf "expected a job id, got %S" rest))
  | "TRACE" -> (
    match String.uppercase_ascii rest with
    | "" | "LAST" -> Ok (Trace None)
    | _ -> (
      match int_of_string_opt rest with
      | Some jid -> Ok (Trace (Some jid))
      | None -> Error (Printf.sprintf "expected a job id or LAST, got %S" rest)))
  | "STATS" -> Ok Stats
  | "DELTA" -> Ok Delta
  | "SLOWLOG" -> Ok Slowlog
  | "METRICS" -> (
    match String.uppercase_ascii rest with
    | "" | "PROM" -> Ok Metrics_prom
    | f -> Error (Printf.sprintf "unknown METRICS format %S (try PROM)" f))
  | "HEALTH" ->
    if rest = "" then Ok Health else Error "HEALTH takes no arguments"
  | "EVENTS" ->
    (* EVENTS [TAIL n] [LEVEL l], clauses in either order *)
    let rec clauses acc_tail acc_level rest =
      if rest = "" then Ok (Events (acc_tail, acc_level))
      else
        let kw, rest = split_word rest in
        let arg, rest = split_word rest in
        match (String.uppercase_ascii kw, arg) with
        | "TAIL", n -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> clauses n acc_level rest
          | _ -> Error (Printf.sprintf "expected a positive tail length, got %S" n))
        | "LEVEL", l -> (
          let l = String.lowercase_ascii l in
          match Xqb_obs.Events.severity_of_string l with
          | Some _ -> clauses acc_tail (Some l) rest
          | None ->
            Error
              (Printf.sprintf
                 "unknown level %S (expected debug, info, warn, error or critical)"
                 l))
        | _ -> Error "EVENTS expects: EVENTS [TAIL n] [LEVEL l]"
    in
    clauses 50 None rest
  | "JOURNAL" -> (
    match String.uppercase_ascii rest with
    | "" | "STAT" -> Ok Journal_stat
    | f -> Error (Printf.sprintf "unknown JOURNAL subcommand %S (try STAT)" f))
  | "REPLICA" -> (
    match String.uppercase_ascii rest with
    | "" | "STAT" -> Ok Replica_stat
    | f -> Error (Printf.sprintf "unknown REPLICA subcommand %S (try STAT)" f))
  | "CHECKPOINT" ->
    if rest = "" then Ok Checkpoint
    else Error "CHECKPOINT takes no arguments"
  | "SHIP" -> (
    let from_w, rest = split_word rest in
    let max_w, id_w = split_word rest in
    let id = if id_w = "" then None else Some id_w in
    match (int_of_string_opt from_w, max_w) with
    | Some from, "" -> Ok (Ship (from, 512, id))
    | Some from, m -> (
      match int_of_string_opt m with
      | Some max when max > 0 -> Ok (Ship (from, max, id))
      | _ -> Error (Printf.sprintf "expected a frame count, got %S" m))
    | None, _ -> Error "SHIP expects: SHIP <from_lsn> [<max>] [<replica id>]")
  | "SNAPSHOT" ->
    if rest = "" then Ok Snapshot else Error "SNAPSHOT takes no arguments"
  | "PROFILE" -> (
    match String.uppercase_ascii rest with
    | "START" -> Ok (Profile `Start)
    | "STOP" -> Ok (Profile `Stop)
    | "DUMP" -> Ok (Profile `Dump)
    | "DUMP JSON" -> Ok (Profile `Dump_json)
    | "" | "STAT" -> Ok (Profile `Stat)
    | f ->
      Error
        (Printf.sprintf
           "unknown PROFILE subcommand %S (try START, STOP, DUMP, DUMP JSON or STAT)"
           f))
  | "QUIT" -> Ok Quit
  | "" -> Error "empty request"
  | kw -> Error (Printf.sprintf "unknown request %S" kw)
