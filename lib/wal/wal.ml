(* The on-disk write-ahead log.

   One append-only file (dir/wal.log) of Codec frames. Writers
   serialize on [m]; an [Always] commit then waits until its last LSN
   is durable, with classic group commit — the first waiter becomes
   the sync leader, fsyncs everything written so far, and wakes the
   group; committers that arrived while the leader was in fsync(2)
   are covered by the next leader's pass.

   The in-memory [tail] mirrors the file (frame bytes keyed by LSN)
   so journal shipping never reads the file concurrently with the
   writer; it is cleared when a checkpoint truncates the log, after
   which replicas older than the checkpoint re-bootstrap from a
   snapshot. *)

module Hist = Xqb_obs.Hist
module Clock = Xqb_obs.Clock

type fsync_policy = Always | Interval_ms of int | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "interval-ms" || String.sub s 0 i = "interval" -> (
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt v with
      | Some ms when ms > 0 -> Ok (Interval_ms ms)
      | _ -> Error (Printf.sprintf "bad fsync interval %S" v))
    | _ ->
      Error
        (Printf.sprintf
           "unknown fsync policy %S (expected always, never or interval-ms:N)" s))

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval_ms ms -> Printf.sprintf "interval-ms:%d" ms

type t = {
  fd : Unix.file_descr;
  path : string;
  policy : fsync_policy;
  m : Mutex.t;
  cond : Condition.t;
  mutable next_lsn : int;  (* LSN the next appended frame receives *)
  mutable written_lsn : int;  (* highest LSN written to the fd *)
  mutable synced_lsn : int;  (* highest LSN known durable *)
  mutable syncing : bool;  (* a group-commit leader is in fsync(2) *)
  mutable sync_started_ns : int;
    (* Clock ns when the current fsync(2) call entered; 0 = none in
       flight. Written by the syncing thread, read unlocked by the
       stall watchdog — a torn read is impossible (tagged int). *)
  mutable fsync_delay : float;
    (* fault injection (tests only): seconds slept inside [do_fsync]
       before the real fsync, to simulate a stalled device *)
  mutable tail : (int * string) list;  (* newest first *)
  mutable tail_start : int;  (* lowest LSN the tail covers *)
  mutable bytes_appended : int;
  mutable frames_appended : int;
  mutable fsyncs : int;
  fsync_hist : Hist.t;
  mutable interval_thread : Thread.t option;
  mutable closed : bool;
}

let wal_file dir = Filename.concat dir "wal.log"

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* fsync under the stats it feeds; called OUTSIDE [t.m] (fsync can
   take milliseconds — holding the mutex would stall appenders). *)
let do_fsync t =
  let t0 = Clock.now_ns () in
  t.sync_started_ns <- t0;
  Fun.protect
    ~finally:(fun () -> t.sync_started_ns <- 0)
    (fun () ->
      (match t.fsync_delay with d when d > 0. -> Unix.sleepf d | _ -> ());
      Unix.fsync t.fd);
  let dt = float_of_int (Clock.now_ns () - t0) in
  locked t (fun () ->
      t.fsyncs <- t.fsyncs + 1;
      Hist.record t.fsync_hist dt)

let interval_loop t ms () =
  let delay = float_of_int ms /. 1000. in
  let stop = ref false in
  while not !stop do
    Thread.delay delay;
    let need =
      locked t (fun () ->
          if t.closed then stop := true;
          (not t.closed) && t.written_lsn > t.synced_lsn)
    in
    if need then begin
      let target = locked t (fun () -> t.written_lsn) in
      do_fsync t;
      locked t (fun () -> t.synced_lsn <- max t.synced_lsn target)
    end
  done

let openw ~dir ~policy ~next_lsn ~tail () =
  let fd =
    Unix.openfile (wal_file dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let last = next_lsn - 1 in
  let t =
    {
      fd;
      path = wal_file dir;
      policy;
      m = Mutex.create ();
      cond = Condition.create ();
      next_lsn;
      written_lsn = last;
      synced_lsn = last;
      syncing = false;
      sync_started_ns = 0;
      fsync_delay = 0.;
      tail = List.rev tail;
      tail_start = (match tail with (l, _) :: _ -> l | [] -> next_lsn);
      bytes_appended = 0;
      frames_appended = 0;
      fsyncs = 0;
      fsync_hist = Hist.create ();
      interval_thread = None;
      closed = false;
    }
  in
  (match policy with
  | Interval_ms ms -> t.interval_thread <- Some (Thread.create (interval_loop t ms) ())
  | Always | Never -> ());
  t

(* Block until [lsn] is durable: group commit. The first waiter to
   find no leader becomes one, fsyncs everything written so far and
   publishes the new high-water mark. *)
let rec sync_upto t lsn =
  let role =
    locked t (fun () ->
        if t.synced_lsn >= lsn then `Done
        else if t.syncing then `Wait
        else begin
          t.syncing <- true;
          `Lead t.written_lsn
        end)
  in
  match role with
  | `Done -> ()
  | `Wait ->
    locked t (fun () ->
        while t.synced_lsn < lsn && t.syncing do
          Condition.wait t.cond t.m
        done);
    sync_upto t lsn
  | `Lead target ->
    (match do_fsync t with
    | () ->
      locked t (fun () ->
          t.synced_lsn <- max t.synced_lsn target;
          t.syncing <- false;
          Condition.broadcast t.cond)
    | exception e ->
      locked t (fun () ->
          t.syncing <- false;
          Condition.broadcast t.cond);
      raise e);
    sync_upto t lsn

(* Append frames without waiting for durability (any policy); the
   caller pairs it with [wait_durable]. This is the scheduler's
   group-commit split: appends happen under its serial apply mutex
   (so WAL byte order matches apply order), the durability wait
   happens outside it, so concurrent committers overlap their fsync
   latency in one leader pass instead of queueing full syncs. *)
let append t records =
  if records = [] then locked t (fun () -> t.next_lsn - 1)
  else
    locked t (fun () ->
        if t.closed then failwith "Wal.append: log is closed";
        let buf = Buffer.create 256 in
        let last = ref (t.next_lsn - 1) in
        List.iter
          (fun r ->
            let lsn = t.next_lsn in
            t.next_lsn <- lsn + 1;
            let fr = Codec.frame ~lsn r in
            Buffer.add_string buf fr;
            t.tail <- (lsn, fr) :: t.tail;
            t.frames_appended <- t.frames_appended + 1;
            last := lsn)
          records;
        let bytes = Buffer.contents buf in
        (* write while holding [m]: appends must hit the file in
           LSN order. Page-cache writes are cheap; the expensive
           fsync happens outside the lock. *)
        write_all t.fd bytes;
        t.bytes_appended <- t.bytes_appended + String.length bytes;
        t.written_lsn <- !last;
        !last)

(* Block until [lsn] is durable under the policy's terms: a no-op
   unless the policy is [Always] (interval/never callers accept the
   window by configuration). *)
let wait_durable t lsn =
  match t.policy with
  | Always -> sync_upto t lsn
  | Interval_ms _ | Never -> ()

let commit t records =
  let last = append t records in
  if records <> [] then wait_durable t last;
  last

let sync t =
  let target = locked t (fun () -> t.written_lsn) in
  if locked t (fun () -> t.synced_lsn < target) then begin
    do_fsync t;
    locked t (fun () -> t.synced_lsn <- max t.synced_lsn target)
  end

let last_lsn t = locked t (fun () -> t.next_lsn - 1)
let tail_start t = locked t (fun () -> t.tail_start)

let ship t ~from_lsn ~max =
  locked t (fun () ->
      if from_lsn < t.tail_start then Error `Too_old
      else begin
        let frames =
          t.tail
          |> List.filter (fun (l, _) -> l >= from_lsn)
          |> List.rev
          |> List.filteri (fun i _ -> i < max)
          |> List.map snd
        in
        Ok (t.next_lsn - 1, frames)
      end)

(* Called after a snapshot covering every LSN so far is durably on
   disk: empty the file (O_APPEND writes restart at offset 0) and
   drop the tail mirror. *)
let truncate_after_checkpoint t =
  locked t (fun () ->
      Unix.ftruncate t.fd 0;
      t.tail <- [];
      t.tail_start <- t.next_lsn;
      t.synced_lsn <- t.next_lsn - 1;
      t.written_lsn <- t.next_lsn - 1);
  match t.policy with Never -> () | _ -> do_fsync t

let bytes_appended t = locked t (fun () -> t.bytes_appended)
let frames_appended t = locked t (fun () -> t.frames_appended)
let fsync_count t = locked t (fun () -> t.fsyncs)
let fsync_hist t = t.fsync_hist
let with_stats_lock t f = locked t f

(* How long the in-flight fsync(2) has been running; 0 when none.
   Unlocked read — see [sync_started_ns]. *)
let fsync_in_progress_ns t =
  match t.sync_started_ns with 0 -> 0 | since -> Clock.now_ns () - since

let fsync_p99_ns t = locked t (fun () -> Hist.percentile t.fsync_hist 0.99)
let inject_fsync_delay t secs = t.fsync_delay <- secs

let close t =
  let th = locked t (fun () -> t.closed <- true; t.interval_thread) in
  (match th with Some th -> Thread.join th | None -> ());
  (match t.policy with
  | Never -> ()
  | Always | Interval_ms _ -> ( try sync t with Unix.Unix_error _ -> ()));
  try Unix.close t.fd with Unix.Unix_error _ -> ()
