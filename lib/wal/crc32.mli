(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
    Values are masked to 32 bits and fit a native [int]. *)

(** [digest s] = CRC-32 of the whole string. *)
val digest : string -> int

(** [digest_sub s pos len] over a substring; bounds-checked. *)
val digest_sub : string -> int -> int -> int

(** Incremental form: [update crc s pos len] extends a running
    checksum (start from {!init}, finish with {!finalize}). *)
val init : int

val update : int -> string -> int -> int -> int
val finalize : int -> int
