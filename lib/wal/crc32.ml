(* CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320), the checksum
   under every WAL frame. Table-driven, one table computed at module
   init; OCaml's 63-bit ints hold the 32-bit value directly. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let init = 0xFFFFFFFF

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xFF)
           lxor (!crc lsr 8)
  done;
  !crc

let finalize crc = crc lxor 0xFFFFFFFF

let digest_sub s pos len = finalize (update init s pos len)
let digest s = digest_sub s 0 (String.length s)
