(** Standard base64 (RFC 4648, with padding, no line breaks) — used
    to put binary WAL frames and snapshots on the one-line wire
    protocol. *)

val encode : string -> string

(** @raise Failure on malformed input. *)
val decode : string -> string
