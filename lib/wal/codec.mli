(** Stable binary codec for the durable store: WAL frames encoding
    {!Xqb_store.Store.mj_entry} journal records (plus catalog
    doc-registration records), and whole-store snapshots.

    Frame wire format (little-endian):

    {v [u32 payload-len][u32 crc32(payload)][payload] v}

    with [payload = varint lsn, u8 tag, body]. Frames are
    self-delimiting, so a WAL file (or a shipped blob) is just a
    concatenation; {!scan} walks it and stops cleanly at a torn or
    corrupt tail. All integers are unsigned LEB128 varints; strings
    are length-prefixed. *)

exception Corrupt of string

(** One durable record. [R_doc] persists a catalog registration
    ([uri -> root node]); the document's node allocations travel as
    ordinary journal entries in the preceding transaction span. *)
type record =
  | R_entry of Xqb_store.Store.mj_entry
  | R_doc of { uri : string; root : int; bytes : int }

(** [frame ~lsn record] — one complete frame, header included. *)
val frame : lsn:int -> record -> string

(** Decode one frame's payload (header already stripped and
    CRC-verified). @raise Corrupt on a malformed payload. *)
val decode_payload : string -> int * record

(** Walk a concatenation of frames starting at [pos]. Returns the
    decoded [(lsn, record, frame bytes incl. header)] list and the
    offset one past the last {e valid} frame — on a torn or corrupt
    tail that offset points at the first bad byte, where the caller
    truncates. Never raises on bad input; decoding stops there
    instead. *)
val scan : ?pos:int -> string -> (int * record * int) list * int

(** {1 Snapshots}

    A snapshot is the full logical store state — every node with its
    kind, name, content, parent, position and child/attribute lists —
    plus the catalog's document registrations, the LSN it covers, and
    an MD5 of the store's canonical {!Xqb_store.Journal.digest}. The
    whole blob is CRC-protected. *)

(** [snapshot ~lsn ~docs store] serializes the current state.
    [docs = (uri, root, bytes)] as in [Catalog.list]. *)
val snapshot :
  lsn:int -> docs:(string * int * int) list -> Xqb_store.Store.t -> string

(** Rebuild the snapshotted state into [store], which must be fresh
    (zero nodes). Returns [(lsn, docs)]. Verifies the CRC and the
    store digest; @raise Corrupt on any mismatch — a damaged snapshot
    must never boot. *)
val restore :
  Xqb_store.Store.t -> string -> int * (string * int * int) list

(** The MD5 hex of a store's canonical digest — the cross-check value
    served by [JOURNAL STAT] and verified on recovery. *)
val store_digest_hex : Xqb_store.Store.t -> string
