(** The durable store manager: checkpointed snapshots + WAL tail.

    Disk layout under [dir]:
    - [wal.log] — {!Codec} frames since the last checkpoint;
    - [snap-<lsn>.snap] — checkpoint snapshots (the two most recent
      are kept; older ones are deleted after a successful checkpoint).

    Recovery loads the latest snapshot that validates (CRC + store
    digest — a digest mismatch refuses to boot), then replays the WAL
    tail: frames at or below the snapshot LSN are skipped, a torn or
    corrupt final frame is truncated away, a trailing half-written
    transaction span (never acknowledged) is dropped, and aborted
    spans replay through the same rollback machinery the original
    used.

    Threading: {!commit_entries}, {!commit_doc}, {!checkpoint} and
    {!maybe_checkpoint} must be called with the service's write lock
    held (single writer); {!ship} / {!stats_json} are safe from any
    thread. *)

type config = {
  dir : string;
  fsync : Wal.fsync_policy;
  checkpoint_bytes : int;  (** snapshot once the WAL grows past this; 0 = never *)
  checkpoint_secs : float;  (** or once this much time has passed; 0. = never *)
}

val default_config : dir:string -> config

type t

type recovered = {
  store : Xqb_store.Store.t;
  docs : (string * int * int) list;  (** catalog registrations: uri, root, bytes *)
  lsn : int;  (** last applied LSN *)
  snapshot_lsn : int;  (** 0 when booting without a snapshot *)
  wal_frames : int;  (** frames replayed from the WAL tail *)
  truncated_bytes : int;  (** torn/incomplete tail dropped from the WAL *)
}

(** Recover (or initialize) the durable state under [cfg.dir],
    creating the directory if needed, and open the WAL for appending.
    @raise Failure with a one-line message on an unusable directory;
    @raise Codec.Corrupt when no snapshot validates. *)
val recover : config -> t * recovered

(** Append journal entries as WAL frames and, under the [Always]
    policy, block until durable — the commit acknowledgment barrier.
    Returns the last LSN. *)
val commit_entries : t -> Xqb_store.Store.mj_entry list -> int

(** The two halves of {!commit_entries}, for the footprint
    scheduler's serialized-apply path: [append_entries] appends the
    frames (call it inside the apply mutex, so WAL order matches
    apply order) without waiting; [wait_durable] blocks until the
    returned LSN is durable under [Always] — call it outside the
    mutex so concurrent writers share one group-commit fsync. *)
val append_entries : t -> Xqb_store.Store.mj_entry list -> int

val wait_durable : t -> int -> unit

(** Persist a catalog registration (after the document's node
    allocations committed via {!commit_entries}). *)
val commit_doc : t -> uri:string -> root:int -> bytes:int -> unit

(** Write a snapshot of [store]'s current state covering every LSN
    appended so far, fsync it, truncate the WAL, and delete old
    snapshots. Returns the checkpoint LSN. Write lock held;
    the store must be quiescent. *)
val checkpoint :
  t -> docs:(string * int * int) list -> Xqb_store.Store.t -> int

(** {!checkpoint} if the size/time thresholds are crossed and there
    is anything to checkpoint. Returns the LSN when one ran. *)
val maybe_checkpoint :
  t -> docs:(string * int * int) list -> Xqb_store.Store.t -> int option

(** Frames for a replica: [(current last LSN, raw frame bytes)].
    [Error `Too_old] when [from_lsn] predates the last checkpoint —
    the replica must re-bootstrap from {!snapshot_blob}. *)
val ship :
  t -> from_lsn:int -> max:int -> (int * string list, [ `Too_old ]) result

(** Serialized snapshot of the current state for replica bootstrap
    (not written to disk). Write lock held. *)
val snapshot_blob :
  t -> docs:(string * int * int) list -> Xqb_store.Store.t -> int * string

val last_lsn : t -> int
val config : t -> config

(** Durability gauges as a JSON object (the STATS ["durable"]
    member). *)
val stats_json : t -> string

(** Append the durability gauges to the service's shared
    {!Xqb_obs.Prom} page (WAL counters, fsync latency summary and
    in-progress gauge, checkpoint gauges). *)
val stats_prom : t -> Xqb_obs.Prom.t -> unit

(** {!Wal.fsync_in_progress_ns} / {!Wal.fsync_p99_ns} /
    {!Wal.inject_fsync_delay} on the underlying log (stall watchdog
    + health checks + fault injection for tests). *)
val fsync_in_progress_ns : t -> int

val fsync_p99_ns : t -> float
val inject_fsync_delay : t -> float -> unit

(** Final fsync and close. *)
val close : t -> unit
