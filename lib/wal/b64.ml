(* RFC 4648 base64 with padding. The wire protocol is line-oriented
   text, so binary frames and snapshots cross it base64-encoded. *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i]
    and b1 = Char.code s.[!i + 1]
    and b2 = Char.code s.[!i + 2] in
    Buffer.add_char buf alphabet.[b0 lsr 2];
    Buffer.add_char buf alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf alphabet.[((b1 land 0xF) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char buf alphabet.[b2 land 0x3F];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let b0 = Char.code s.[!i] in
    Buffer.add_char buf alphabet.[b0 lsr 2];
    Buffer.add_char buf alphabet.[(b0 land 0x3) lsl 4];
    Buffer.add_string buf "=="
  | 2 ->
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
    Buffer.add_char buf alphabet.[b0 lsr 2];
    Buffer.add_char buf alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf alphabet.[(b1 land 0xF) lsl 2];
    Buffer.add_char buf '='
  | _ -> ());
  Buffer.contents buf

let value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - 65
  | 'a' .. 'z' -> Char.code c - 97 + 26
  | '0' .. '9' -> Char.code c - 48 + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> failwith (Printf.sprintf "base64: invalid character %C" c)

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then failwith "base64: length not a multiple of 4";
  let buf = Buffer.create (n / 4 * 3) in
  let i = ref 0 in
  while !i < n do
    let c0 = s.[!i] and c1 = s.[!i + 1] and c2 = s.[!i + 2] and c3 = s.[!i + 3] in
    let v0 = value c0 and v1 = value c1 in
    Buffer.add_char buf (Char.chr ((v0 lsl 2) lor (v1 lsr 4)));
    if c2 <> '=' then begin
      let v2 = value c2 in
      Buffer.add_char buf (Char.chr (((v1 land 0xF) lsl 4) lor (v2 lsr 2)));
      if c3 <> '=' then
        Buffer.add_char buf (Char.chr (((v2 land 0x3) lsl 6) lor value c3))
      else if !i + 4 <> n then failwith "base64: padding before end"
    end
    else if c3 <> '=' || !i + 4 <> n then failwith "base64: padding before end";
    i := !i + 4
  done;
  Buffer.contents buf
