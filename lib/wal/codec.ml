(* Stable binary codec for the durable store: length-prefixed,
   CRC32-checksummed frames around mutation-journal entries (and
   catalog doc registrations), plus whole-store snapshots.

   Everything here is deliberately dependency-free and explicit about
   byte layout — this is an on-disk format that must stay readable
   across builds. Integers are unsigned LEB128 varints; strings are
   varint-length-prefixed bytes; options are a 0/1 byte. *)

module S = Xqb_store.Store
module Q = Xqb_xml.Qname

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type record =
  | R_entry of S.mj_entry
  | R_doc of { uri : string; root : int; bytes : int }

(* -- primitive writers --------------------------------------------- *)

let put_varint buf v =
  if v < 0 then invalid_arg "Codec.put_varint: negative";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_opt put buf = function
  | None -> put_bool buf false
  | Some v ->
    put_bool buf true;
    put buf v

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_qname buf (q : Q.t) =
  put_string buf q.Q.prefix;
  put_string buf q.Q.local

(* -- primitive readers --------------------------------------------- *)

(* Readers thread an explicit cursor and raise [Corrupt] on overrun —
   never an out-of-bounds exception. *)
type cursor = { s : string; mutable pos : int; limit : int }

let need c n =
  if c.pos + n > c.limit then corrupt "truncated record at byte %d" c.pos

let get_byte c =
  need c 1;
  let b = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 56 then corrupt "varint overflow at byte %d" c.pos;
    let b = get_byte c in
    v := !v lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !v

let get_string c =
  let n = get_varint c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_byte c with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad boolean byte %d" b

let get_opt get c = if get_bool c then Some (get c) else None

let get_u32 c =
  need c 4;
  let b i = Char.code c.s.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_qname c =
  let prefix = get_string c in
  let local = get_string c in
  Q.make ~prefix local

(* -- journal ops ---------------------------------------------------- *)

let kind_tag = function
  | S.Document -> 0
  | S.Element -> 1
  | S.Attribute -> 2
  | S.Text -> 3
  | S.Comment -> 4
  | S.Pi -> 5

let kind_of_tag = function
  | 0 -> S.Document
  | 1 -> S.Element
  | 2 -> S.Attribute
  | 3 -> S.Text
  | 4 -> S.Comment
  | 5 -> S.Pi
  | t -> corrupt "bad node-kind tag %d" t

let put_position buf = function
  | S.First -> Buffer.add_char buf '\000'
  | S.Last -> Buffer.add_char buf '\001'
  | S.After a ->
    Buffer.add_char buf '\002';
    put_varint buf a

let get_position c =
  match get_byte c with
  | 0 -> S.First
  | 1 -> S.Last
  | 2 -> S.After (get_varint c)
  | t -> corrupt "bad insert-position tag %d" t

let put_op buf (op : S.mj_op) =
  match op with
  | S.M_make (kind, name, content) ->
    Buffer.add_char buf '\000';
    Buffer.add_char buf (Char.chr (kind_tag kind));
    put_opt put_qname buf name;
    put_string buf content
  | S.M_insert (parent, position, nodes) ->
    Buffer.add_char buf '\001';
    put_varint buf parent;
    put_position buf position;
    put_varint buf (List.length nodes);
    List.iter (put_varint buf) nodes
  | S.M_detach n ->
    Buffer.add_char buf '\002';
    put_varint buf n
  | S.M_rename (n, q) ->
    Buffer.add_char buf '\003';
    put_varint buf n;
    put_qname buf q
  | S.M_set_content (n, s) ->
    Buffer.add_char buf '\004';
    put_varint buf n;
    put_string buf s
  | S.M_deep_copy n ->
    Buffer.add_char buf '\005';
    put_varint buf n
  | S.M_txn_begin -> Buffer.add_char buf '\006'
  | S.M_txn_commit -> Buffer.add_char buf '\007'
  | S.M_txn_abort -> Buffer.add_char buf '\008'
  | S.M_request { line; col; snap_depth; trace_id; desc } ->
    Buffer.add_char buf '\009';
    put_varint buf line;
    put_varint buf col;
    put_varint buf snap_depth;
    put_opt put_string buf trace_id;
    put_string buf desc

let get_op c : S.mj_op =
  match get_byte c with
  | 0 ->
    let kind = kind_of_tag (get_byte c) in
    let name = get_opt get_qname c in
    let content = get_string c in
    S.M_make (kind, name, content)
  | 1 ->
    let parent = get_varint c in
    let position = get_position c in
    let n = get_varint c in
    let nodes = List.init n (fun _ -> get_varint c) in
    S.M_insert (parent, position, nodes)
  | 2 -> S.M_detach (get_varint c)
  | 3 ->
    let n = get_varint c in
    let q = get_qname c in
    S.M_rename (n, q)
  | 4 ->
    let n = get_varint c in
    let s = get_string c in
    S.M_set_content (n, s)
  | 5 -> S.M_deep_copy (get_varint c)
  | 6 -> S.M_txn_begin
  | 7 -> S.M_txn_commit
  | 8 -> S.M_txn_abort
  | 9 ->
    let line = get_varint c in
    let col = get_varint c in
    let snap_depth = get_varint c in
    let trace_id = get_opt get_string c in
    let desc = get_string c in
    S.M_request { line; col; snap_depth; trace_id; desc }
  | t -> corrupt "bad journal-op tag %d" t

(* -- records and frames --------------------------------------------- *)

let tag_entry = 1
let tag_doc = 2

let put_record buf = function
  | R_entry { S.seq; op } ->
    Buffer.add_char buf (Char.chr tag_entry);
    put_varint buf seq;
    put_op buf op
  | R_doc { uri; root; bytes } ->
    Buffer.add_char buf (Char.chr tag_doc);
    put_string buf uri;
    put_varint buf root;
    put_varint buf bytes

let payload ~lsn record =
  let buf = Buffer.create 64 in
  put_varint buf lsn;
  put_record buf record;
  Buffer.contents buf

let decode_payload s =
  let c = { s; pos = 0; limit = String.length s } in
  let lsn = get_varint c in
  let record =
    match get_byte c with
    | t when t = tag_entry ->
      let seq = get_varint c in
      let op = get_op c in
      R_entry { S.seq; op }
    | t when t = tag_doc ->
      let uri = get_string c in
      let root = get_varint c in
      let bytes = get_varint c in
      R_doc { uri; root; bytes }
    | t -> corrupt "bad record tag %d" t
  in
  if c.pos <> c.limit then corrupt "trailing garbage in record payload";
  (lsn, record)

let frame ~lsn record =
  let p = payload ~lsn record in
  let buf = Buffer.create (String.length p + 8) in
  put_u32 buf (String.length p);
  put_u32 buf (Crc32.digest p);
  Buffer.add_string buf p;
  Buffer.contents buf

(* Guards against reading an absurd length out of a corrupt header
   and allocating gigabytes: no legitimate frame (one journal entry /
   one doc registration) comes anywhere near this. *)
let max_frame_payload = 1 lsl 26

(* Walk concatenated frames; stop (without raising) at the first
   torn or corrupt one. Returns the decoded frames and the offset one
   past the last valid frame. *)
let scan ?(pos = 0) s =
  let n = String.length s in
  let acc = ref [] in
  let at = ref pos in
  let ok = ref true in
  while !ok do
    if !at + 8 > n then ok := false
    else begin
      let c = { s; pos = !at; limit = n } in
      let len = get_u32 c in
      let crc = get_u32 c in
      if len > max_frame_payload || !at + 8 + len > n then ok := false
      else if Crc32.digest_sub s (!at + 8) len <> crc then ok := false
      else begin
        match decode_payload (String.sub s (!at + 8) len) with
        | exception Corrupt _ -> ok := false
        | lsn, record ->
          acc := (lsn, record, 8 + len) :: !acc;
          at := !at + 8 + len
      end
    end
  done;
  (List.rev !acc, !at)

(* -- snapshots ------------------------------------------------------ *)

let snapshot_magic = "XQSNAP01"

let store_digest_hex store = Digest.to_hex (Digest.string (Xqb_store.Journal.digest store))

let snapshot ~lsn ~docs store =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf snapshot_magic;
  put_varint buf lsn;
  put_varint buf (List.length docs);
  List.iter
    (fun (uri, root, bytes) ->
      put_string buf uri;
      put_varint buf root;
      put_varint buf bytes)
    docs;
  let n = S.node_count store in
  put_varint buf n;
  for id = 0 to n - 1 do
    let node = S.get store id in
    Buffer.add_char buf (Char.chr (kind_tag node.S.kind));
    put_opt put_qname buf node.S.name;
    put_string buf node.S.content;
    (match node.S.parent with
    | None -> put_varint buf 0
    | Some p -> put_varint buf (p + 1));
    put_varint buf node.S.pos;
    let children = S.children store id in
    put_varint buf (List.length children);
    List.iter (put_varint buf) children;
    let attrs = S.attributes store id in
    put_varint buf (List.length attrs);
    List.iter (put_varint buf) attrs
  done;
  put_string buf (store_digest_hex store);
  let body = Buffer.contents buf in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  put_u32 out (Crc32.digest body);
  Buffer.contents out

let restore store s =
  if S.node_count store <> 0 then
    invalid_arg "Codec.restore: target store is not fresh";
  let n = String.length s in
  if n < String.length snapshot_magic + 4 then corrupt "snapshot too short";
  let body_len = n - 4 in
  let c = { s; pos = 0; limit = body_len } in
  (let tail = { s; pos = body_len; limit = n } in
   if Crc32.digest_sub s 0 body_len <> get_u32 tail then
     corrupt "snapshot CRC mismatch");
  need c (String.length snapshot_magic);
  if String.sub s 0 (String.length snapshot_magic) <> snapshot_magic then
    corrupt "bad snapshot magic";
  c.pos <- String.length snapshot_magic;
  let lsn = get_varint c in
  let ndocs = get_varint c in
  let docs =
    List.init ndocs (fun _ ->
        let uri = get_string c in
        let root = get_varint c in
        let bytes = get_varint c in
        (uri, root, bytes))
  in
  let count = get_varint c in
  (* pass 1: allocate every node in id order (ids are sequential);
     pass 2: wire parents/positions and the child/attribute lists
     directly into the exposed node records *)
  let links = Array.make (max count 1) (None, 0, [], []) in
  for id = 0 to count - 1 do
    let kind = kind_of_tag (get_byte c) in
    let name = get_opt get_qname c in
    let content = get_string c in
    let parent =
      match get_varint c with 0 -> None | p -> Some (p - 1)
    in
    let pos = get_varint c in
    let nchildren = get_varint c in
    let children = List.init nchildren (fun _ -> get_varint c) in
    let nattrs = get_varint c in
    let attrs = List.init nattrs (fun _ -> get_varint c) in
    let id' = S.replay_make store kind name content in
    if id' <> id then corrupt "snapshot allocation drift at node %d" id;
    links.(id) <- (parent, pos, children, attrs)
  done;
  let digest = get_string c in
  if c.pos <> c.limit then corrupt "trailing garbage in snapshot";
  for id = 0 to count - 1 do
    let parent, pos, children, attrs = links.(id) in
    let node = S.get store id in
    (match parent with
    | Some p when p < 0 || p >= count -> corrupt "snapshot parent out of range"
    | _ -> ());
    node.S.parent <- parent;
    node.S.pos <- pos;
    List.iter
      (fun ch ->
        if ch < 0 || ch >= count then corrupt "snapshot child out of range";
        Xqb_store.Vec.push node.S.children ch)
      children;
    List.iter
      (fun a ->
        if a < 0 || a >= count then corrupt "snapshot attribute out of range";
        Xqb_store.Vec.push node.S.attributes a)
      attrs
  done;
  let actual = store_digest_hex store in
  if not (String.equal actual digest) then
    corrupt "snapshot digest mismatch: stored %s, rebuilt %s" digest actual;
  (lsn, docs)
