(** The on-disk write-ahead log: an append-only file of {!Codec}
    frames with a group-commit writer and a configurable fsync
    policy, plus an in-memory mirror of the tail (everything since
    the last checkpoint) for journal shipping.

    Thread-safe. LSNs are assigned at append, strictly increasing,
    and survive checkpoint truncation and restarts. *)

type fsync_policy =
  | Always  (** fsync before every commit acknowledgment (group commit) *)
  | Interval_ms of int  (** background fsync every N ms *)
  | Never

val fsync_policy_of_string : string -> (fsync_policy, string) result
val fsync_policy_to_string : fsync_policy -> string

type t

(** Open (creating if needed) [dir/wal.log]. [next_lsn] is the first
    LSN to assign — recovery passes [last recovered LSN + 1].
    [tail] seeds the in-memory shipping mirror with the recovered
    frames ([lsn, frame bytes], oldest first). *)
val openw :
  dir:string ->
  policy:fsync_policy ->
  next_lsn:int ->
  tail:(int * string) list ->
  unit ->
  t

(** Append one frame per record and, under [Always], block until the
    batch is durable (group commit: concurrent committers share one
    fsync). Returns the last assigned LSN. *)
val commit : t -> Codec.record list -> int

(** The two halves of {!commit}, for callers that must append inside
    a critical section but wait for durability outside it (the
    service's serialized apply + group-commit fsync): [append] writes
    the frames and returns the last LSN without syncing; [wait_durable]
    blocks until that LSN is durable under [Always] (no-op for the
    other policies, which accept a loss window by configuration). *)
val append : t -> Codec.record list -> int

val wait_durable : t -> int -> unit

(** Force an fsync of everything appended so far (any policy). *)
val sync : t -> unit

(** Highest assigned LSN (0 before the first append). *)
val last_lsn : t -> int

(** First LSN present in the in-memory tail; ship requests below it
    need a snapshot bootstrap. *)
val tail_start : t -> int

(** Frames with [lsn >= from_lsn], at most [max], as raw frame bytes
    plus the current last LSN. [Error `Too_old] when [from_lsn] falls
    before the tail (truncated by a checkpoint). *)
val ship :
  t -> from_lsn:int -> max:int -> (int * string list, [ `Too_old ]) result

(** Truncate the log to empty after a durable checkpoint covering
    everything up to the current last LSN; clears the tail mirror.
    LSNs keep increasing. *)
val truncate_after_checkpoint : t -> unit

(** {1 Durability counters (for METRICS)} *)

val bytes_appended : t -> int
val frames_appended : t -> int
val fsync_count : t -> int

(** Nanosecond fsync latencies. Synchronize via {!with_stats_lock}
    when reading percentiles concurrently with commits. *)
val fsync_hist : t -> Xqb_obs.Hist.t

val with_stats_lock : t -> (unit -> 'a) -> 'a

(** How long the in-flight fsync(2) has been running (monotonic ns);
    0 when none — the stall watchdog's "group commit stuck" signal.
    Read without locking; stale by at most a poll period. *)
val fsync_in_progress_ns : t -> int

(** 99th-percentile fsync latency in ns (0 before the first fsync). *)
val fsync_p99_ns : t -> float

(** Fault injection for tests: sleep [secs] inside every subsequent
    fsync, simulating a stalled device. 0 restores normal service. *)
val inject_fsync_delay : t -> float -> unit

(** Final fsync (unless [Never]), stop the interval thread, close. *)
val close : t -> unit
