(* The durable store manager: checkpointed snapshots + WAL tail.

   Disk layout under [dir]:
     wal.log            frames since the last checkpoint
     snap-<lsn>.snap    checkpoint snapshots (two most recent kept)

   Commit protocol (the service calls these with its write lock
   held): the in-memory snap has already applied; [commit_entries]
   appends the resulting journal span to the WAL and — under the
   Always policy — blocks until it is durable. Only then does the
   service acknowledge the client, so recovery always reproduces the
   last acknowledged state (a crash between the in-memory apply and
   the WAL append loses only an un-acknowledged commit).

   Recovery: newest snapshot that validates (CRC + canonical store
   digest; a mismatch refuses to boot), then the WAL tail — frames
   at or below the snapshot LSN are skipped (a crash between
   snapshot-rename and WAL-truncate leaves them behind), a torn
   final frame and a trailing half-written transaction span are
   truncated away, aborted spans replay through the normal rollback
   machinery. *)

module S = Xqb_store.Store
module J = Xqb_store.Journal
module Hist = Xqb_obs.Hist

type config = {
  dir : string;
  fsync : Wal.fsync_policy;
  checkpoint_bytes : int;
  checkpoint_secs : float;
}

let default_config ~dir =
  { dir; fsync = Wal.Always; checkpoint_bytes = 4 * 1024 * 1024;
    checkpoint_secs = 0. }

type t = {
  cfg : config;
  wal : Wal.t;
  m : Mutex.t;
  mutable ckpt_lsn : int;  (* LSN covered by the newest snapshot *)
  mutable ckpt_time : float;
  mutable ckpt_wal_bytes : int;  (* Wal.bytes_appended at last checkpoint *)
  mutable checkpoints : int;  (* snapshots written this run *)
  recovered_lsn : int;
}

type recovered = {
  store : S.t;
  docs : (string * int * int) list;
  lsn : int;
  snapshot_lsn : int;
  wal_frames : int;
  truncated_bytes : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let fail fmt = Printf.ksprintf failwith fmt

(* -- file helpers --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Durable file write: tmp + fsync + rename + directory fsync, so a
   crash leaves either the old set of files or the new one, never a
   half-written snapshot under its final name. *)
let write_file_durable ~dir path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd content;
      Unix.fsync fd);
  Unix.rename tmp path;
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())

let snap_name lsn = Printf.sprintf "snap-%012d.snap" lsn

let snap_lsn_of_name name =
  (* "snap-" ^ 12 digits ^ ".snap" *)
  if String.length name = 22
     && String.sub name 0 5 = "snap-"
     && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 5 12)
  else None

let list_snapshots dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         Option.map (fun lsn -> (lsn, Filename.concat dir name)) (snap_lsn_of_name name))
  |> List.sort (fun (a, _) (b, _) -> compare b a)  (* newest first *)

(* -- recovery ------------------------------------------------------- *)

let ensure_dir dir =
  (match Unix.stat dir with
  | { Unix.st_kind = Unix.S_DIR; _ } -> ()
  | _ -> fail "data directory %s exists but is not a directory" dir
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (e, _, _) ->
      fail "cannot create data directory %s: %s" dir (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) ->
    fail "cannot access data directory %s: %s" dir (Unix.error_message e));
  (* probe writability up front so `serve` fails with one clear line
     instead of an exception from deep inside the first commit *)
  let probe = Filename.concat dir ".write-probe" in
  (match Unix.openfile probe [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink probe with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error (e, _, _) ->
    fail "data directory %s is not writable: %s" dir (Unix.error_message e))

(* Load the newest snapshot that validates. Returns
   (store, docs, snapshot lsn); a fresh store at LSN 0 when no
   snapshot exists. @raise Codec.Corrupt when snapshots exist but
   none validates — booting from a silently wrong state is the one
   thing a durable store must never do. *)
let load_snapshot dir =
  let rec try_all errors = function
    | [] ->
      if errors = [] then (S.create (), [], 0)
      else
        raise
          (Codec.Corrupt
             ("no valid snapshot: "
             ^ String.concat "; " (List.rev errors)))
    | (_, path) :: rest -> (
      match
        let blob = read_file path in
        let store = S.create () in
        let lsn, docs = Codec.restore store blob in
        (store, docs, lsn)
      with
      | result -> result
      | exception Codec.Corrupt msg ->
        try_all (Printf.sprintf "%s: %s" (Filename.basename path) msg :: errors) rest
      | exception Sys_error msg -> try_all (msg :: errors) rest)
  in
  try_all [] (list_snapshots dir)

let recover cfg =
  ensure_dir cfg.dir;
  let store, docs, snapshot_lsn = load_snapshot cfg.dir in
  let wal_path = Filename.concat cfg.dir "wal.log" in
  let raw = if Sys.file_exists wal_path then read_file wal_path else "" in
  let frames, valid_len = Codec.scan raw in
  (* keep only frames past the snapshot, and of those only the
     longest prefix whose transaction spans are complete — a trailing
     half-written span was never acknowledged *)
  let fresh = List.filter (fun (lsn, _, _) -> lsn > snapshot_lsn) frames in
  let cut =
    (* index into [fresh] one past the last frame at which the
       top-level span depth returns to zero *)
    let depth = ref 0 and best = ref 0 in
    List.iteri
      (fun i (_, record, _) ->
        (match record with
        | Codec.R_entry { S.op = S.M_txn_begin; _ } -> incr depth
        | Codec.R_entry { S.op = S.M_txn_commit | S.M_txn_abort; _ } ->
          depth := max 0 (!depth - 1)
        | _ -> ());
        if !depth = 0 then best := i + 1)
      fresh;
    !best
  in
  let kept = List.filteri (fun i _ -> i < cut) fresh in
  let keep_bytes =
    valid_len
    - List.fold_left
        (fun acc (_, _, sz) -> acc + sz)
        0
        (List.filteri (fun i _ -> i >= cut) fresh)
  in
  let truncated_bytes = String.length raw - keep_bytes in
  (* truncate the torn/incomplete tail on disk before reopening for
     append *)
  if truncated_bytes > 0 && Sys.file_exists wal_path then begin
    let fd = Unix.openfile wal_path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd keep_bytes;
        try Unix.fsync fd with Unix.Unix_error _ -> ())
  end;
  (* replay: journal entries re-execute against the restored store
     (aborted spans roll back exactly as they originally did);
     doc-registration records update the catalog table *)
  let entries =
    List.filter_map
      (function _, Codec.R_entry e, _ -> Some e | _ -> None)
      kept
  in
  J.apply store entries;
  let docs =
    List.fold_left
      (fun docs (_, record, _) ->
        match record with
        | Codec.R_doc { uri; root; bytes } ->
          (uri, root, bytes) :: List.filter (fun (u, _, _) -> u <> uri) docs
        | Codec.R_entry _ -> docs)
      docs kept
  in
  let lsn =
    List.fold_left (fun acc (l, _, _) -> max acc l) snapshot_lsn kept
  in
  (* seed the shipping tail with the surviving frames: raw bytes
     sliced back out of the file image by size *)
  let tail =
    let off = ref 0 in
    List.filter_map
      (fun (l, _, sz) ->
        let fr = String.sub raw !off sz in
        off := !off + sz;
        if l > snapshot_lsn && l <= lsn then Some (l, fr) else None)
      frames
  in
  let wal =
    Wal.openw ~dir:cfg.dir ~policy:cfg.fsync ~next_lsn:(lsn + 1) ~tail ()
  in
  let t =
    {
      cfg;
      wal;
      m = Mutex.create ();
      ckpt_lsn = snapshot_lsn;
      ckpt_time = Unix.gettimeofday ();
      ckpt_wal_bytes = 0;
      checkpoints = 0;
      recovered_lsn = lsn;
    }
  in
  ( t,
    {
      store;
      docs;
      lsn;
      snapshot_lsn;
      wal_frames = List.length kept;
      truncated_bytes;
    } )

(* -- commits -------------------------------------------------------- *)

let commit_entries t entries =
  Wal.commit t.wal (List.map (fun e -> Codec.R_entry e) entries)

(* Group-commit split (the footprint scheduler's commit path):
   append under the caller's apply mutex, wait for the fsync outside
   it so concurrent writers overlap their durability latency. *)
let append_entries t entries =
  Wal.append t.wal (List.map (fun e -> Codec.R_entry e) entries)

let wait_durable t lsn = Wal.wait_durable t.wal lsn

let commit_doc t ~uri ~root ~bytes =
  ignore (Wal.commit t.wal [ Codec.R_doc { uri; root; bytes } ])

(* -- checkpoints ---------------------------------------------------- *)

let checkpoint t ~docs store =
  let lsn = Wal.last_lsn t.wal in
  let blob = Codec.snapshot ~lsn ~docs store in
  write_file_durable ~dir:t.cfg.dir
    (Filename.concat t.cfg.dir (snap_name lsn))
    blob;
  Wal.truncate_after_checkpoint t.wal;
  locked t (fun () ->
      t.ckpt_lsn <- lsn;
      t.ckpt_time <- Unix.gettimeofday ();
      t.ckpt_wal_bytes <- Wal.bytes_appended t.wal;
      t.checkpoints <- t.checkpoints + 1);
  (* keep the two newest snapshots as recovery fallbacks *)
  List.iteri
    (fun i (_, path) ->
      if i >= 2 then try Sys.remove path with Sys_error _ -> ())
    (list_snapshots t.cfg.dir);
  lsn

let maybe_checkpoint t ~docs store =
  let due =
    locked t (fun () ->
        let lsn = Wal.last_lsn t.wal in
        lsn > t.ckpt_lsn
        && ((t.cfg.checkpoint_bytes > 0
             && Wal.bytes_appended t.wal - t.ckpt_wal_bytes
                >= t.cfg.checkpoint_bytes)
           || (t.cfg.checkpoint_secs > 0.
              && Unix.gettimeofday () -. t.ckpt_time >= t.cfg.checkpoint_secs)))
  in
  if due then Some (checkpoint t ~docs store) else None

(* -- shipping ------------------------------------------------------- *)

let ship t ~from_lsn ~max = Wal.ship t.wal ~from_lsn ~max

let snapshot_blob t ~docs store =
  let lsn = Wal.last_lsn t.wal in
  (lsn, Codec.snapshot ~lsn ~docs store)

let last_lsn t = Wal.last_lsn t.wal
let config t = t.cfg

(* -- stats ---------------------------------------------------------- *)

let stats_json t =
  let ckpt_lsn, ckpt_age, checkpoints =
    locked t (fun () ->
        (t.ckpt_lsn, Unix.gettimeofday () -. t.ckpt_time, t.checkpoints))
  in
  let hist_fields =
    Wal.with_stats_lock t.wal (fun () ->
        Hist.to_json_fields (Wal.fsync_hist t.wal))
  in
  Printf.sprintf
    "{\"fsync_policy\":\"%s\",\"last_lsn\":%d,\"recovered_lsn\":%d,\"wal_bytes_appended\":%d,\"wal_frames_appended\":%d,\"fsyncs\":%d,\"fsync_ns\":{%s},\"checkpoints\":%d,\"checkpoint_lsn\":%d,\"checkpoint_age_s\":%.3f}"
    (Wal.fsync_policy_to_string t.cfg.fsync)
    (Wal.last_lsn t.wal) t.recovered_lsn
    (Wal.bytes_appended t.wal)
    (Wal.frames_appended t.wal)
    (Wal.fsync_count t.wal)
    hist_fields checkpoints ckpt_lsn ckpt_age

(* Durability gauges onto the service's shared Prometheus page (the
   service composes METRICS PROM from every layer on one emitter). *)
let stats_prom t (p : Xqb_obs.Prom.t) =
  let ckpt_lsn, ckpt_age, checkpoints =
    locked t (fun () ->
        (t.ckpt_lsn, Unix.gettimeofday () -. t.ckpt_time, t.checkpoints))
  in
  let q v =
    Wal.with_stats_lock t.wal (fun () ->
        Hist.percentile (Wal.fsync_hist t.wal) v)
  in
  let module P = Xqb_obs.Prom in
  P.counter p ~help:"Bytes appended to the WAL." "xqbang_wal_bytes_appended_total"
    (Wal.bytes_appended t.wal);
  P.counter p ~help:"Frames appended to the WAL."
    "xqbang_wal_frames_appended_total"
    (Wal.frames_appended t.wal);
  P.counter p ~help:"WAL fsync(2) calls." "xqbang_wal_fsync_total"
    (Wal.fsync_count t.wal);
  P.summary p ~help:"WAL fsync(2) latency."
    ~fmt:(fun v -> Printf.sprintf "%.9f" v)
    "xqbang_wal_fsync_seconds"
    ~quantiles:[ (0.5, q 0.5 /. 1e9); (0.99, q 0.99 /. 1e9) ]
    ~sum:
      (Wal.with_stats_lock t.wal (fun () -> Hist.sum (Wal.fsync_hist t.wal))
      /. 1e9)
    ~count:(Wal.fsync_count t.wal);
  P.gauge p
    ~help:"Seconds the current in-flight fsync(2) has been running; 0 when idle."
    "xqbang_wal_fsync_in_progress_seconds"
    (float_of_int (Wal.fsync_in_progress_ns t.wal) /. 1e9);
  P.gauge_i p ~help:"Highest assigned WAL LSN." "xqbang_wal_last_lsn"
    (Wal.last_lsn t.wal);
  P.counter p ~help:"Checkpoint snapshots written this run."
    "xqbang_checkpoints_total" checkpoints;
  P.gauge_i p ~help:"LSN covered by the newest checkpoint snapshot."
    "xqbang_checkpoint_lsn" ckpt_lsn;
  P.gauge p ~help:"Seconds since the newest checkpoint snapshot."
    "xqbang_checkpoint_age_seconds" ckpt_age

let fsync_in_progress_ns t = Wal.fsync_in_progress_ns t.wal
let fsync_p99_ns t = Wal.fsync_p99_ns t.wal
let inject_fsync_delay t secs = Wal.inject_fsync_delay t.wal secs
let close t = Wal.close t.wal
