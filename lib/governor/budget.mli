(** Per-query resource budgets and cooperative cancellation.

    Bottom-of-the-stack module (depends only on [Unix] and the
    monotonic clock in [Xqb_obs]) so both the
    store's axis iterators and the core evaluator can charge work
    against the same budget without a dependency cycle. The service
    layer decides the limits; this module only enforces them. *)

type reason = Deadline | Cancelled | Fuel | Delta_limit

exception Budget_exceeded of reason

val reason_to_string : reason -> string

(** {1 Cancel tokens}

    One token per in-flight job, shared with whoever may kill it
    (wire [CANCEL], deadline watchdog, shutdown). First requested
    reason wins; the job observes it at its next poll. *)

type cancel = reason option Atomic.t

val token : unit -> cancel
val request : cancel -> reason -> unit
val requested : cancel -> reason option

(** {1 Budgets} *)

type t

(** [create ?deadline ?deadline_ns ?fuel ?max_delta ?cancel ()] —
    [deadline_ns] is an absolute *monotonic* deadline
    ({!Xqb_obs.Clock} nanoseconds) and the preferred form: wall-clock
    steps (NTP, VM suspend) can neither expire a running job early
    nor keep one alive. [deadline] is the legacy absolute wall-clock
    form ([Unix.gettimeofday] scale); both are checked when given.
    [fuel] caps charged evaluation steps, [max_delta] the innermost
    snap frame's pending-update count. Omitted limits are unlimited;
    an omitted [cancel] gets a fresh token (so cancellation works
    even on an otherwise unlimited budget). *)
val create :
  ?deadline:float ->
  ?deadline_ns:int ->
  ?fuel:int ->
  ?max_delta:int ->
  ?cancel:cancel ->
  unit ->
  t

val cancel_token : t -> cancel
val steps_used : t -> int

(** Charge [n] units of work; raises [Budget_exceeded Fuel] when the
    fuel runs out and polls the cancel flag / wall clock every ~256
    charged units. *)
val charge : t -> int -> unit

(** Check the cancel flag and the deadline now, regardless of the
    poll interval. *)
val poll : t -> unit

(** [charge_delta t pending] — raises [Budget_exceeded Delta_limit]
    when the pending-update count exceeds the budget's cap. *)
val charge_delta : t -> int -> unit

(** {1 Domain-local current budget}

    A scheduler job runs entirely on one domain; layers with no
    evaluation context in scope (store axis iteration) find the
    active budget here. [with_current] installs and always restores,
    including on exceptions. *)

val current : unit -> t option
val with_current : t option -> (unit -> 'a) -> 'a
val charge_current : int -> unit
