(* Per-query resource budgets: a wall-clock deadline, an
   evaluation-step fuel allowance, a cap on the pending-update list,
   and a cooperative cancel token. The evaluator (and the store's
   axis iterators, via the domain-local [current] budget) charge
   steps at cheap, frequent points; the expensive checks — reading
   the clock and the cancel flag — only run every [poll_every] steps,
   so an un-budgeted or far-from-its-limit query pays a couple of
   integer compares per evaluation node.

   The module sits below both [Xqb_store] and [Core] so axis
   iteration deep inside the store can be charged without a
   dependency cycle. Nothing here knows about queries or services;
   the service layer decides limits and owns the watchdog. *)

type reason = Deadline | Cancelled | Fuel | Delta_limit

exception Budget_exceeded of reason

let reason_to_string = function
  | Deadline -> "deadline exceeded"
  | Cancelled -> "cancelled"
  | Fuel -> "evaluation fuel exhausted"
  | Delta_limit -> "pending-update limit exceeded"

(* A cancel token is shared between the running job and whoever may
   kill it (the wire CANCEL command, the service's deadline
   watchdog, shutdown). First reason wins; the job observes it at
   its next poll. *)
type cancel = reason option Atomic.t

let token () = Atomic.make None
let request tok r = ignore (Atomic.compare_and_set tok None (Some r))
let requested tok = Atomic.get tok

type t = {
  deadline : float;  (* absolute (Unix.gettimeofday scale); infinity = none *)
  deadline_ns : int;
    (* absolute monotonic ({!Xqb_obs.Clock} scale); max_int = none.
       Preferred over [deadline]: a wall-clock step (NTP, VM suspend)
       can neither expire a running job early nor keep one alive. *)
  fuel : int;  (* max evaluation steps; max_int = none *)
  max_delta : int;  (* max pending requests in one snap frame *)
  cancel : cancel;
  mutable used : int;
  mutable next_poll : int;
}

(* How many charged steps between clock/cancel polls. Small enough
   that a tight evaluation loop notices a deadline within
   microseconds, large enough that gettimeofday stays off the hot
   path. *)
let poll_every = 256

let create ?deadline ?deadline_ns ?fuel ?max_delta ?cancel () =
  {
    deadline = Option.value deadline ~default:infinity;
    deadline_ns = Option.value deadline_ns ~default:max_int;
    fuel = Option.value fuel ~default:max_int;
    max_delta = Option.value max_delta ~default:max_int;
    cancel = (match cancel with Some c -> c | None -> token ());
    used = 0;
    next_poll = poll_every;
  }

let cancel_token t = t.cancel
let steps_used t = t.used

(* The expensive half of a check: cancel flag, then wall clock. A
   deadline hit also marks the token, so concurrent observers (the
   watchdog, STATS) agree on why the job died. *)
let poll t =
  (match Atomic.get t.cancel with
  | Some r -> raise (Budget_exceeded r)
  | None -> ());
  if t.deadline_ns <> max_int && Xqb_obs.Clock.now_ns () > t.deadline_ns then begin
    request t.cancel Deadline;
    raise (Budget_exceeded Deadline)
  end;
  if Float.is_finite t.deadline && Unix.gettimeofday () > t.deadline then begin
    request t.cancel Deadline;
    raise (Budget_exceeded Deadline)
  end

(* Charge [n] units of work. Raises [Budget_exceeded] when the fuel
   runs out, and polls clock/cancel every [poll_every] units. *)
let charge t n =
  t.used <- t.used + n;
  if t.used > t.fuel then raise (Budget_exceeded Fuel);
  if t.used >= t.next_poll then begin
    t.next_poll <- t.used + poll_every;
    poll t
  end

(* [pending] is the current size of the innermost snap frame's
   update list (O(1) — Snap_stack keeps a count). *)
let charge_delta t pending =
  if pending > t.max_delta then raise (Budget_exceeded Delta_limit)

(* -- the domain-local current budget --------------------------------

   A scheduler job runs entirely on one domain, so layers that have
   no evaluation context in scope (store axis iteration) find the
   active budget here. Installed by [Engine.with_budget] around a
   run; always restored, including on exceptions. *)

let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key

let with_current b f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key b;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

let charge_current n =
  match Domain.DLS.get current_key with None -> () | Some b -> charge b n
