(* Single-thread fiber event loop on OCaml 5 effects.

   Layout: a ready queue of thunks (start-a-fiber or resume-a-
   continuation), an fd -> waiter table feeding the poll(2) stub, a
   hashed timer wheel for deadlines, and an external queue + wakeup
   pipe so scheduler worker domains and other sys-threads can inject
   work without touching loop state. All loop structures are owned by
   the loop thread; the only cross-thread paths are the atomic waker
   latch, the live-fiber counter, and the mutex-guarded external
   queue. *)

exception Stopped

type wait_result = [ `Readable | `Writable | `Woken | `Timeout ]

(* Event bits shared with fiber_stubs.c. *)
let bit_rd = 1

let bit_wr = 2

let bit_err = 4

external poll_fds :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "xqb_fiber_poll"

(* Timer wheel: 512 slots of ~8.4 ms ticks (2^23 ns), one rotation
   ~= 4.3 s. Deadlines land in slot (deadline >> gran) mod slots;
   cancellation is lazy (dead entries drop out when their slot is
   swept). [soonest] is a lower bound on the next live deadline used
   to size the poll timeout; it may be stale after cancellations,
   which only causes an early wake and a rescan. *)
let gran_bits = 23

let wheel_slots = 512

let wheel_mask = wheel_slots - 1

type timer = {
  t_deadline : int;
  mutable t_live : bool;
  t_fire : unit -> unit;
}

type t = {
  mutable tid : int; (* Thread.id of the loop thread, -1 before run *)
  ready : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable cancelled : bool; (* stop epilogue already ran *)
  live : int Atomic.t;
  suspensions : (int, suspension) Hashtbl.t;
  mutable next_id : int;
  io : (Unix.file_descr, io_entry) Hashtbl.t;
  wheel : timer list array;
  mutable timer_count : int;
  mutable soonest : int;
  mutable last_tick : int;
  ext_mutex : Mutex.t;
  mutable ext : (unit -> unit) list;
  wake_rd : Unix.file_descr;
  wake_wr : Unix.file_descr;
  on_error : exn -> unit;
  (* Reusable poll arrays, grown on demand. *)
  mutable pfds : Unix.file_descr array;
  mutable pevents : int array;
  mutable prevents : int array;
}

and io_entry = {
  mutable e_rd : suspension option;
  mutable e_wr : suspension option;
}

and suspension = {
  s_id : int;
  s_k : (wait_result, unit) Effect.Deep.continuation;
  mutable s_fired : bool;
  mutable s_rd : Unix.file_descr option;
  mutable s_wr : Unix.file_descr option;
  mutable s_timer : timer option;
  mutable s_waker : waker option;
}

and waker = {
  w_loop : t;
  w_state : int Atomic.t; (* 0 = idle, 1 = signalled *)
  mutable w_susp : suspension option; (* loop thread only *)
}

type wait_spec = {
  sp_rd : Unix.file_descr option;
  sp_wr : Unix.file_descr option;
  sp_deadline : int option;
  sp_waker : waker option;
}

type _ Effect.t +=
  | Wait : wait_spec -> wait_result Effect.t
  | Yield : unit Effect.t

let default_on_error e =
  Printf.eprintf "fiber: uncaught exception: %s\n%!" (Printexc.to_string e)

let create ?(on_error = default_on_error) () =
  let wake_rd, wake_wr = Unix.pipe () in
  Unix.set_nonblock wake_rd;
  Unix.set_nonblock wake_wr;
  {
    tid = -1;
    ready = Queue.create ();
    stopping = false;
    cancelled = false;
    live = Atomic.make 0;
    suspensions = Hashtbl.create 1024;
    next_id = 0;
    io = Hashtbl.create 1024;
    wheel = Array.make wheel_slots [];
    timer_count = 0;
    soonest = max_int;
    last_tick = Xqb_obs.Clock.now_ns () lsr gran_bits;
    ext_mutex = Mutex.create ();
    ext = [];
    wake_rd;
    wake_wr;
    on_error;
    pfds = Array.make 64 wake_rd;
    pevents = Array.make 64 0;
    prevents = Array.make 64 0;
  }

let post_ext t thunk =
  Mutex.lock t.ext_mutex;
  t.ext <- thunk :: t.ext;
  Mutex.unlock t.ext_mutex;
  (* A full pipe means a wakeup is already pending; a closed pipe
     means the loop is gone and the thunk will simply never run. *)
  try ignore (Unix.write t.wake_wr (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* Timers ----------------------------------------------------------- *)

let add_timer t ~deadline_ns fire =
  let tm = { t_deadline = deadline_ns; t_live = true; t_fire = fire } in
  let slot = (deadline_ns lsr gran_bits) land wheel_mask in
  t.wheel.(slot) <- tm :: t.wheel.(slot);
  t.timer_count <- t.timer_count + 1;
  if deadline_ns < t.soonest then t.soonest <- deadline_ns;
  tm

let cancel_timer t tm =
  if tm.t_live then begin
    tm.t_live <- false;
    t.timer_count <- t.timer_count - 1
  end

let rescan_soonest t =
  let s = ref max_int in
  Array.iter
    (List.iter (fun tm ->
         if tm.t_live && tm.t_deadline < !s then s := tm.t_deadline))
    t.wheel;
  t.soonest <- !s

let expire_timers t now =
  if now >= t.soonest then begin
    let now_tick = now lsr gran_bits in
    (* Sweep from the last processed tick up to now; if the loop was
       idle for over a rotation, one pass over every slot suffices. *)
    let steps = min (now_tick - t.last_tick + 1) wheel_slots in
    for i = 0 to steps - 1 do
      let slot = (t.last_tick + i) land wheel_mask in
      match t.wheel.(slot) with
      | [] -> ()
      | entries ->
          t.wheel.(slot) <-
            List.filter
              (fun tm ->
                if not tm.t_live then false
                else if tm.t_deadline <= now then begin
                  tm.t_live <- false;
                  t.timer_count <- t.timer_count - 1;
                  (try tm.t_fire () with e -> t.on_error e);
                  false
                end
                else true)
              entries
    done;
    t.last_tick <- now_tick;
    rescan_soonest t
  end

(* Suspension lifecycle --------------------------------------------- *)

let clear_io_slot t fd ~rd =
  match Hashtbl.find_opt t.io fd with
  | None -> ()
  | Some e ->
      if rd then e.e_rd <- None else e.e_wr <- None;
      if e.e_rd = None && e.e_wr = None then Hashtbl.remove t.io fd

let detach t s =
  s.s_fired <- true;
  Hashtbl.remove t.suspensions s.s_id;
  (match s.s_rd with Some fd -> clear_io_slot t fd ~rd:true | None -> ());
  (match s.s_wr with Some fd -> clear_io_slot t fd ~rd:false | None -> ());
  (match s.s_timer with Some tm -> cancel_timer t tm | None -> ());
  match s.s_waker with
  | Some w -> (
      match w.w_susp with
      | Some s' when s' == s -> w.w_susp <- None
      | _ -> ())
  | None -> ()

let fire t s (result : wait_result) =
  if not s.s_fired then begin
    detach t s;
    Queue.push (fun () -> Effect.Deep.continue s.s_k result) t.ready
  end

let cancel_susp t s exn_ =
  if not s.s_fired then begin
    detach t s;
    Queue.push (fun () -> Effect.Deep.discontinue s.s_k exn_) t.ready
  end

(* Wakers ----------------------------------------------------------- *)

let waker t = { w_loop = t; w_state = Atomic.make 0; w_susp = None }

let try_fire_waker w =
  match w.w_susp with
  | Some s when not s.s_fired ->
      if Atomic.compare_and_set w.w_state 1 0 then fire w.w_loop s `Woken
  | _ -> ()
(* No suspension attached: the latch stays set and the next wait
   consumes it immediately. *)

let wake w =
  if Atomic.compare_and_set w.w_state 0 1 then
    post_ext w.w_loop (fun () -> try_fire_waker w)

(* Effect handling --------------------------------------------------- *)

let io_entry t fd =
  match Hashtbl.find_opt t.io fd with
  | Some e -> e
  | None ->
      let e = { e_rd = None; e_wr = None } in
      Hashtbl.add t.io fd e;
      e

let handle_wait t spec (k : (wait_result, unit) Effect.Deep.continuation) =
  if t.stopping then Effect.Deep.discontinue k Stopped
  else begin
    let woken =
      match spec.sp_waker with
      | Some w -> Atomic.compare_and_set w.w_state 1 0
      | None -> false
    in
    if woken then Effect.Deep.continue k `Woken
    else begin
      let invalid msg = Effect.Deep.discontinue k (Invalid_argument msg) in
      let slot_taken fd ~rd =
        match Hashtbl.find_opt t.io fd with
        | None -> false
        | Some e -> if rd then e.e_rd <> None else e.e_wr <> None
      in
      if
        spec.sp_rd = None && spec.sp_wr = None && spec.sp_deadline = None
        && spec.sp_waker = None
      then invalid "Fiber.wait: nothing to wait for"
      else if
        match spec.sp_rd with Some fd -> slot_taken fd ~rd:true | None -> false
      then invalid "Fiber.wait: fd already has a read waiter"
      else if
        match spec.sp_wr with
        | Some fd -> slot_taken fd ~rd:false
        | None -> false
      then invalid "Fiber.wait: fd already has a write waiter"
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let s =
          {
            s_id = id;
            s_k = k;
            s_fired = false;
            s_rd = None;
            s_wr = None;
            s_timer = None;
            s_waker = None;
          }
        in
        Hashtbl.add t.suspensions id s;
        (match spec.sp_rd with
        | Some fd ->
            (io_entry t fd).e_rd <- Some s;
            s.s_rd <- Some fd
        | None -> ());
        (match spec.sp_wr with
        | Some fd ->
            (io_entry t fd).e_wr <- Some s;
            s.s_wr <- Some fd
        | None -> ());
        (match spec.sp_deadline with
        | Some d ->
            s.s_timer <- Some (add_timer t ~deadline_ns:d (fun () -> fire t s `Timeout))
        | None -> ());
        match spec.sp_waker with
        | Some w ->
            w.w_susp <- Some s;
            s.s_waker <- Some w;
            (* A wake may have latched between the fast-path check and
               the attach; the posted try_fire_waker will find us. *)
            if Atomic.get w.w_state = 1 then try_fire_waker w
        | None -> ()
      end
    end
  end

let handler t : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> Atomic.decr t.live);
    exnc =
      (fun e ->
        Atomic.decr t.live;
        match e with Stopped -> () | e -> t.on_error e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Queue.push (fun () -> Effect.Deep.continue k ()) t.ready)
        | Wait spec ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                handle_wait t spec k)
        | _ -> None);
  }

let start_fiber t f () = Effect.Deep.match_with f () (handler t)

let spawn t f =
  Atomic.incr t.live;
  if t.tid = Thread.id (Thread.self ()) then Queue.push (start_fiber t f) t.ready
  else post_ext t (fun () -> Queue.push (start_fiber t f) t.ready)

let yield () = Effect.perform Yield

let wait ?readable ?writable ?deadline_ns ?waker () =
  Effect.perform
    (Wait
       {
         sp_rd = readable;
         sp_wr = writable;
         sp_deadline = deadline_ns;
         sp_waker = waker;
       })

let sleep_ns n =
  let deadline_ns = Xqb_obs.Clock.now_ns () + n in
  ignore (wait ~deadline_ns () : wait_result)

let stop t = post_ext t (fun () -> t.stopping <- true)

let live t = Atomic.get t.live

(* Promises ---------------------------------------------------------- *)

type 'a promise = { p_cell : 'a option Atomic.t; p_waker : waker }

let promise t = { p_cell = Atomic.make None; p_waker = waker t }

let resolve p v =
  if Atomic.compare_and_set p.p_cell None (Some v) then wake p.p_waker
  else invalid_arg "Fiber.resolve: already resolved"

let rec await p =
  match Atomic.get p.p_cell with
  | Some v -> v
  | None ->
      ignore (wait ~waker:p.p_waker () : wait_result);
      await p

(* The loop ---------------------------------------------------------- *)

let drain_batch t =
  (* Run only the thunks present now; a fiber that yields in a loop
     lands behind the next poll instead of starving it. *)
  let n = Queue.length t.ready in
  for _ = 1 to n do
    match Queue.pop t.ready with
    | thunk -> ( try thunk () with e -> t.on_error e)
    | exception Queue.Empty -> ()
  done

let drain_ext t =
  Mutex.lock t.ext_mutex;
  let thunks = List.rev t.ext in
  t.ext <- [];
  Mutex.unlock t.ext_mutex;
  List.iter (fun f -> try f () with e -> t.on_error e) thunks

let drain_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_rd buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let cancel_all t =
  t.cancelled <- true;
  let ss = Hashtbl.fold (fun _ s acc -> s :: acc) t.suspensions [] in
  List.iter (fun s -> cancel_susp t s Stopped) ss

let ensure_poll_cap t n =
  if Array.length t.pfds < n then begin
    let cap = max n (2 * Array.length t.pfds) in
    t.pfds <- Array.make cap t.wake_rd;
    t.pevents <- Array.make cap 0;
    t.prevents <- Array.make cap 0
  end

let poll_timeout_ms t now =
  if not (Queue.is_empty t.ready) then 0
  else if t.stopping then 0
  else if t.timer_count = 0 then -1
  else
    let delta = t.soonest - now in
    if delta <= 0 then 0
    else min ((delta + 999_999) / 1_000_000) 1_000

let do_poll t timeout =
  ensure_poll_cap t (Hashtbl.length t.io + 1);
  t.pfds.(0) <- t.wake_rd;
  t.pevents.(0) <- bit_rd;
  let n = ref 1 in
  Hashtbl.iter
    (fun fd e ->
      let ev =
        (if e.e_rd <> None then bit_rd else 0)
        lor if e.e_wr <> None then bit_wr else 0
      in
      if ev <> 0 then begin
        t.pfds.(!n) <- fd;
        t.pevents.(!n) <- ev;
        incr n
      end)
    t.io;
  let nready = poll_fds t.pfds t.pevents t.prevents !n timeout in
  if nready > 0 then begin
    if t.prevents.(0) land bit_rd <> 0 then drain_pipe t;
    (* Error/hangup reports as readiness in both directions so the
       fiber's next syscall observes the failure (EOF, EPIPE, ...). *)
    for i = 1 to !n - 1 do
      let re = t.prevents.(i) in
      if re <> 0 then
        match Hashtbl.find_opt t.io t.pfds.(i) with
        | None -> ()
        | Some e ->
            (if re land (bit_rd lor bit_err) <> 0 then
               match e.e_rd with
               | Some s -> fire t s `Readable
               | None -> ());
            if re land (bit_wr lor bit_err) <> 0 then (
              match e.e_wr with Some s -> fire t s `Writable | None -> ())
    done
  end

let run t main =
  t.tid <- Thread.id (Thread.self ());
  spawn t main;
  let running = ref true in
  while !running do
    drain_batch t;
    drain_ext t;
    if t.stopping && not t.cancelled then cancel_all t;
    let now = Xqb_obs.Clock.now_ns () in
    expire_timers t now;
    if Queue.is_empty t.ready && Atomic.get t.live = 0 then running := false
    else do_poll t (poll_timeout_ms t now)
  done
