/* poll(2) for the fiber event loop.

   Unix.select caps at FD_SETSIZE (1024) file descriptors, which is
   exactly the wall a C10K edge must not hit; poll carries plain
   arrays and scales to the open-file limit. The binding copies the
   interest set into a C array, releases the OCaml runtime lock for
   the blocking wait (the serve process runs sys-threads — the
   monitor, the watchdog, thread-edge connections — on the same
   domain as the event loop), and writes readiness back into a
   caller-provided int array.

   Event bits (shared with fiber.ml — keep in sync):
     1 = readable (POLLIN), 2 = writable (POLLOUT),
     4 = error/hangup (POLLERR | POLLHUP | POLLNVAL).  */

#include <caml/mlvalues.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/threads.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>

#define XQB_POLL_RD 1
#define XQB_POLL_WR 2
#define XQB_POLL_ERR 4

/* xqb_fiber_poll fds events revents n timeout_ms

   [fds], [events] and [revents] are int arrays of length >= n; the
   first n slots of [revents] are overwritten. Returns the number of
   ready descriptors; EINTR counts as zero ready (the loop just
   re-runs). */
CAMLprim value xqb_fiber_poll(value v_fds, value v_events, value v_revents,
                              value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  int n = Int_val(v_n);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfd = NULL;
  int ready, i;

  if (n < 0) caml_invalid_argument("xqb_fiber_poll: negative count");
  if (n > 0) {
    pfd = malloc(sizeof(struct pollfd) * (size_t)n);
    if (pfd == NULL) caml_failwith("xqb_fiber_poll: out of memory");
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(v_events, i));
      pfd[i].fd = Int_val(Field(v_fds, i));
      pfd[i].events = (short)(((ev & XQB_POLL_RD) ? POLLIN : 0)
                              | ((ev & XQB_POLL_WR) ? POLLOUT : 0));
      pfd[i].revents = 0;
    }
  }

  caml_enter_blocking_section();
  ready = poll(pfd, (nfds_t)n, timeout);
  caml_leave_blocking_section();

  if (ready < 0) {
    int err = errno;
    free(pfd);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("poll(2) failed");
  }

  for (i = 0; i < n; i++) {
    short re = pfd[i].revents;
    int out = ((re & POLLIN) ? XQB_POLL_RD : 0)
              | ((re & POLLOUT) ? XQB_POLL_WR : 0)
              | ((re & (POLLERR | POLLHUP | POLLNVAL)) ? XQB_POLL_ERR : 0);
    Field(v_revents, i) = Val_int(out);
  }
  free(pfd);
  CAMLreturn(Val_int(ready));
}
