(** A dependency-free effects-based fiber runtime for the service edge.

    One OS thread runs an event loop ({!run}) that multiplexes many
    lightweight fibers over a poll(2) readiness engine, a hashed timer
    wheel for deadlines, and a wakeup pipe for cross-thread signalling.
    Fibers are plain [unit -> unit] thunks suspended with OCaml 5
    one-shot continuations; there is no work stealing and no implicit
    parallelism — everything a fiber touches runs on the loop thread,
    so fibers need no locking among themselves.

    Cross-thread entry points (safe from any thread): {!spawn},
    {!stop}, {!wake}, {!resolve}. Everything else must be called from
    a fiber running on the loop. *)

type t
(** An event loop. Create with {!create}, drive with {!run}. *)

exception Stopped
(** Raised inside suspended fibers when the loop is stopped, so
    [Fun.protect] finalizers run and file descriptors get closed. *)

type wait_result = [ `Readable | `Writable | `Woken | `Timeout ]

type waker
(** A one-shot, latching, thread-safe signal bound to a loop. If
    {!wake} fires before the target fiber waits, the next
    [wait ~waker] returns [`Woken] immediately — wakeups are never
    lost. Consuming the wakeup re-arms the latch. *)

type 'a promise
(** A write-once cell a single fiber can {!await}; resolvable from any
    thread (e.g. a scheduler worker domain). *)

val create : ?on_error:(exn -> unit) -> unit -> t
(** [create ()] makes a fresh loop. [on_error] receives exceptions
    that escape a fiber body (default: print to stderr); {!Stopped}
    is swallowed silently. *)

val run : t -> (unit -> unit) -> unit
(** [run t main] runs [main] as the first fiber and drives the loop on
    the calling thread until either every fiber has finished or
    {!stop} was called and all cancelled fibers have unwound. *)

val stop : t -> unit
(** Request shutdown from any thread: every suspended fiber is resumed
    with {!Stopped}, new waits raise {!Stopped}, and {!run} returns
    once the fibers have unwound. Idempotent. *)

val spawn : t -> (unit -> unit) -> unit
(** Start a new fiber. Callable from any thread; from a foreign thread
    the fiber is handed to the loop via the wakeup pipe. *)

val yield : unit -> unit
(** Reschedule the calling fiber behind the current ready batch. *)

val wait :
  ?readable:Unix.file_descr ->
  ?writable:Unix.file_descr ->
  ?deadline_ns:int ->
  ?waker:waker ->
  unit ->
  wait_result
(** Suspend the calling fiber until one of the given events occurs:
    [readable]/[writable] readiness on a non-blocking fd (error and
    hangup conditions report as readiness so the next syscall observes
    the failure), an absolute monotonic [deadline_ns]
    ({!Xqb_obs.Clock.now_ns} timebase), or the [waker] firing. At
    least one event source must be supplied. At most one fiber may
    wait on each direction of an fd at a time. *)

val sleep_ns : int -> unit
(** Suspend the calling fiber for a relative duration. *)

val waker : t -> waker
val wake : waker -> unit

val promise : t -> 'a promise
val resolve : 'a promise -> 'a -> unit
(** Fulfil the promise; raises [Invalid_argument] if already resolved. *)

val await : 'a promise -> 'a
(** Block the calling fiber until resolved. Single-consumer. *)

val live : t -> int
(** Number of fibers spawned and not yet finished. *)
