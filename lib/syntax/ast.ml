(* Surface abstract syntax for XQuery! — the XQuery 1.0 fragment the
   paper builds on, plus the Fig. 1 extensions (insert/delete/replace/
   rename/copy/snap). Normalization to the core language lives in
   [Core.Normalize]. *)

module Qname = Xqb_xml.Qname

(* Source location of an effecting expression's keyword, recorded by
   the parser and threaded through normalization onto the update
   requests the expression emits (provenance). *)
type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let loc_to_string { line; col } = Printf.sprintf "%d:%d" line col

type snap_mode =
  | Snap_default  (* same as ordered; "snap { e }" *)
  | Snap_ordered
  | Snap_nondeterministic
  | Snap_conflict  (* the conflict-detection semantics of §3.2 *)
  | Snap_atomic
    (* extension: ordered application plus failure atomicity — if the
       body raises, every store effect it performed (applied nested
       snaps included) is rolled back. §5 sketches this use of snap
       for "controlling the extent of failure propagation". *)

let snap_mode_to_string = function
  | Snap_default -> ""
  | Snap_ordered -> "ordered"
  | Snap_nondeterministic -> "nondeterministic"
  | Snap_conflict -> "conflict"
  | Snap_atomic -> "atomic"

type binop =
  | Or
  | And
  (* general comparisons *)
  | Gen_eq | Gen_ne | Gen_lt | Gen_le | Gen_gt | Gen_ge
  (* value comparisons *)
  | Val_eq | Val_ne | Val_lt | Val_le | Val_gt | Val_ge
  (* node comparisons *)
  | Is | Precedes | Follows
  | Add | Sub | Mul | Div | Idiv | Mod
  | To
  | Union | Intersect | Except

let binop_to_string = function
  | Or -> "or" | And -> "and"
  | Gen_eq -> "=" | Gen_ne -> "!=" | Gen_lt -> "<" | Gen_le -> "<="
  | Gen_gt -> ">" | Gen_ge -> ">="
  | Val_eq -> "eq" | Val_ne -> "ne" | Val_lt -> "lt" | Val_le -> "le"
  | Val_gt -> "gt" | Val_ge -> "ge"
  | Is -> "is" | Precedes -> "<<" | Follows -> ">>"
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv"
  | Mod -> "mod" | To -> "to"
  | Union -> "union" | Intersect -> "intersect" | Except -> "except"

type literal =
  | Lit_integer of int
  | Lit_decimal of float
  | Lit_double of float
  | Lit_string of string

(* Sequence types (used on function signatures and instance-of). *)
type item_type =
  | It_atomic of Qname.t  (* xs:integer, xs:string, ... *)
  | It_item
  | It_node
  | It_element of Qname.t option
  | It_attribute of Qname.t option
  | It_text
  | It_comment
  | It_pi
  | It_document

type occurrence = Occ_one | Occ_opt | Occ_star | Occ_plus

type seq_type =
  | St_empty
  | St of item_type * occurrence

type axis = Xqb_store.Axes.axis

type node_test = Xqb_store.Axes.node_test

type expr =
  | Literal of literal
  | Var of string
  | Context_item  (* . *)
  | Seq of expr list  (* e1, e2, ...; Seq [] is "()" *)
  | Root  (* leading "/" *)
  | Path of expr * step  (* e/axis::test[preds] *)
  | Path_general of expr * expr  (* e1/e2 where e2 is not an axis step *)
  | Filter of expr * expr list  (* e[p1][p2]... *)
  | Flwor of clause list * (order_spec list) option * expr
  | Quantified of quantifier * (string * expr) list * expr
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Unary_minus of expr
  | Call of Qname.t * expr list
  | Instance_of of expr * seq_type
  | Cast_as of expr * item_type
  | Castable_as of expr * item_type
  | Treat_as of expr * seq_type
  | Typeswitch of expr * (string option * seq_type * expr) list * string option * expr
    (* typeswitch (e) case ($v as)? T return e ... default ($v)? return e *)
  (* constructors *)
  | Dir_elem of Qname.t * (Qname.t * avt list) list * content list
  | Comp_elem of name_spec * expr
  | Comp_attr of name_spec * expr
  | Comp_text of expr
  | Comp_comment of expr
  | Comp_pi of name_spec * expr
  | Comp_doc of expr
  (* XQuery! extensions (Fig. 1) *)
  | Insert of expr * insert_loc * loc
  | Delete of expr * loc
  | Replace of expr * expr * loc
  | Replace_value of expr * expr * loc
    (* XQUF compatibility: "replace value of node e1 with e2" — sets
       the target's content instead of replacing the node *)
  | Rename of expr * expr * loc
  | Copy of expr
  | Transform of (string * expr) list * expr * expr
    (* XQUF compatibility: copy $v := e (, ...)* modify u return r —
       sugar for let-copies + an inner snap around the modify clause *)
  | Snap of snap_mode * expr

and step = { axis : axis; test : node_test; preds : expr list }

and clause =
  | For of (string * string option * expr) list  (* $v (at $pos)? in e *)
  | Let of (string * expr) list
  | Where of expr

and order_spec = expr * sort_dir

and sort_dir = Ascending | Descending

and quantifier = Some_q | Every_q

and name_spec =
  | Static_name of Qname.t  (* element foo {...} *)
  | Dynamic_name of expr  (* element {e} {...} *)

and avt = Avt_text of string | Avt_expr of expr

and content =
  | C_text of string
  | C_expr of expr  (* enclosed { e } *)
  | C_elem of expr  (* nested constructor *)
  | C_comment of string
  | C_pi of string * string

and insert_loc =
  | Into of expr  (* into { e } *)
  | Into_as_first of expr
  | Into_as_last of expr
  | Before of expr
  | After of expr

(* Prolog declarations. *)
type decl =
  | Decl_variable of string * seq_type option * expr
  | Decl_function of Qname.t * (string * seq_type option) list * seq_type option * expr

type prog = { prolog : decl list; body : expr option }

(* -- Convenience constructors used by tests and examples ----------- *)

let lit_int i = Literal (Lit_integer i)
let lit_str s = Literal (Lit_string s)
let seq = function [ e ] -> e | es -> Seq es

let child_step ?(preds = []) name =
  { axis = Xqb_store.Axes.Child;
    test = Xqb_store.Axes.Name (Qname.of_string name);
    preds }

let occurrence_to_string = function
  | Occ_one -> ""
  | Occ_opt -> "?"
  | Occ_star -> "*"
  | Occ_plus -> "+"

let item_type_to_string = function
  | It_atomic q -> Qname.to_string q
  | It_item -> "item()"
  | It_node -> "node()"
  | It_element None -> "element()"
  | It_element (Some q) -> "element(" ^ Qname.to_string q ^ ")"
  | It_attribute None -> "attribute()"
  | It_attribute (Some q) -> "attribute(" ^ Qname.to_string q ^ ")"
  | It_text -> "text()"
  | It_comment -> "comment()"
  | It_pi -> "processing-instruction()"
  | It_document -> "document-node()"

let seq_type_to_string = function
  | St_empty -> "empty-sequence()"
  | St (it, occ) -> item_type_to_string it ^ occurrence_to_string occ
