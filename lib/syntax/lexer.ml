(* Hand-written lexer for XQuery!.

   XQuery has no reserved words; every keyword is contextual. The
   lexer therefore emits generic [Name]/[Qname] tokens and the parser
   decides from context whether "for", "insert", "snap", ... are
   keywords. Direct element constructors are lexed *by the parser*
   through the raw-scanning entry points at the bottom of this module
   (the standard trick for XQuery's context-sensitive lexing). *)

type token =
  | Int of int
  | Decimal of float
  | Double of float
  | Str of string
  | Name of string  (* NCName *)
  | Qname of string * string  (* prefix:local, lexed with no spaces *)
  | Var of string  (* $name *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Dot
  | Dotdot
  | Slash
  | Slashslash
  | At
  | Coloncolon
  | Colonassign  (* := *)
  | Star
  | Plus
  | Minus
  | Eq
  | Ne  (* != *)
  | Lt
  | Le
  | Gt
  | Ge
  | Ltlt
  | Gtgt
  | Bar
  | Question
  | Eof

let token_to_string = function
  | Int i -> string_of_int i
  | Decimal f -> Printf.sprintf "%g" f
  | Double f -> Printf.sprintf "%ge0" f
  | Str s -> Printf.sprintf "%S" s
  | Name s -> s
  | Qname (p, l) -> p ^ ":" ^ l
  | Var v -> "$" ^ v
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]" | Comma -> "," | Semi -> ";"
  | Dot -> "." | Dotdot -> ".." | Slash -> "/" | Slashslash -> "//"
  | At -> "@" | Coloncolon -> "::" | Colonassign -> ":="
  | Star -> "*" | Plus -> "+" | Minus -> "-" | Eq -> "=" | Ne -> "!="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Ltlt -> "<<"
  | Gtgt -> ">>" | Bar -> "|" | Question -> "?" | Eof -> "<eof>"

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
  mutable tok_line : int;
  mutable tok_col : int;
}

exception Error of int * int * string  (* line, col, message *)

let make src = { src; pos = 0; line = 1; bol = 0; tok_line = 1; tok_col = 1 }

let position lx = (lx.line, lx.pos - lx.bol + 1)

let token_start lx = (lx.tok_line, lx.tok_col)

let fail lx msg =
  let line, col = position lx in
  raise (Error (line, col, msg))

let eof lx = lx.pos >= String.length lx.src

let peek_char lx = if eof lx then '\000' else lx.src.[lx.pos]

let char_at lx i =
  if lx.pos + i >= String.length lx.src then '\000' else lx.src.[lx.pos + i]

let advance lx =
  if not (eof lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'

(* Skip whitespace and (nestable) XQuery comments "(: ... :)". *)
let rec skip_trivia lx =
  while (not (eof lx)) && is_space (peek_char lx) do
    advance lx
  done;
  if peek_char lx = '(' && char_at lx 1 = ':' then begin
    advance lx;
    advance lx;
    let depth = ref 1 in
    while !depth > 0 do
      if eof lx then fail lx "unterminated comment";
      if peek_char lx = '(' && char_at lx 1 = ':' then begin
        incr depth; advance lx; advance lx
      end
      else if peek_char lx = ':' && char_at lx 1 = ')' then begin
        decr depth; advance lx; advance lx
      end
      else advance lx
    done;
    skip_trivia lx
  end

let scan_ncname lx =
  let start = lx.pos in
  if not (Xqb_xml.Qname.is_name_start (peek_char lx)) then fail lx "expected a name";
  while
    (not (eof lx)) && Xqb_xml.Qname.is_name_char (peek_char lx)
  do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let scan_number lx =
  let start = lx.pos in
  while is_digit (peek_char lx) do
    advance lx
  done;
  let is_decimal = peek_char lx = '.' && is_digit (char_at lx 1) in
  if is_decimal then begin
    advance lx;
    while is_digit (peek_char lx) do
      advance lx
    done
  end;
  let is_double = peek_char lx = 'e' || peek_char lx = 'E' in
  if is_double then begin
    advance lx;
    if peek_char lx = '+' || peek_char lx = '-' then advance lx;
    if not (is_digit (peek_char lx)) then fail lx "malformed exponent";
    while is_digit (peek_char lx) do
      advance lx
    done
  end;
  let text = String.sub lx.src start (lx.pos - start) in
  if is_double then Double (float_of_string text)
  else if is_decimal then Decimal (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Decimal (float_of_string text)

(* String literal: quote doubling escapes the quote; entity references
   are expanded. *)
let scan_string lx =
  let quote = peek_char lx in
  advance lx;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof lx then fail lx "unterminated string literal";
    let c = peek_char lx in
    if c = quote then begin
      advance lx;
      if peek_char lx = quote then begin
        Buffer.add_char buf quote;
        advance lx;
        loop ()
      end
    end
    else begin
      Buffer.add_char buf c;
      advance lx;
      loop ()
    end
  in
  loop ();
  let raw = Buffer.contents buf in
  match Xqb_xml.Escape.unescape raw with
  | s -> Str s
  | exception Xqb_xml.Escape.Unknown_entity e -> fail lx ("unknown entity: " ^ e)

let next lx =
  skip_trivia lx;
  (let line, col = position lx in
   lx.tok_line <- line;
   lx.tok_col <- col);
  if eof lx then Eof
  else
    let c = peek_char lx in
    match c with
    | '(' -> advance lx; Lparen
    | ')' -> advance lx; Rparen
    | '{' -> advance lx; Lbrace
    | '}' -> advance lx; Rbrace
    | '[' -> advance lx; Lbracket
    | ']' -> advance lx; Rbracket
    | ',' -> advance lx; Comma
    | ';' -> advance lx; Semi
    | '@' -> advance lx; At
    | '|' -> advance lx; Bar
    | '?' -> advance lx; Question
    | '+' -> advance lx; Plus
    | '-' -> advance lx; Minus
    | '*' -> advance lx; Star
    | '=' -> advance lx; Eq
    | '!' ->
      advance lx;
      if peek_char lx = '=' then (advance lx; Ne) else fail lx "expected '='"
    | '<' ->
      advance lx;
      if peek_char lx = '=' then (advance lx; Le)
      else if peek_char lx = '<' then (advance lx; Ltlt)
      else Lt
    | '>' ->
      advance lx;
      if peek_char lx = '=' then (advance lx; Ge)
      else if peek_char lx = '>' then (advance lx; Gtgt)
      else Gt
    | '/' ->
      advance lx;
      if peek_char lx = '/' then (advance lx; Slashslash) else Slash
    | ':' ->
      advance lx;
      if peek_char lx = ':' then (advance lx; Coloncolon)
      else if peek_char lx = '=' then (advance lx; Colonassign)
      else fail lx "unexpected ':'"
    | '.' ->
      if is_digit (char_at lx 1) then begin
        (* .5 style decimal *)
        let start = lx.pos in
        advance lx;
        while is_digit (peek_char lx) do
          advance lx
        done;
        Decimal (float_of_string ("0" ^ String.sub lx.src start (lx.pos - start)))
      end
      else begin
        advance lx;
        if peek_char lx = '.' then (advance lx; Dotdot) else Dot
      end
    | '$' ->
      advance lx;
      let n = scan_ncname lx in
      (* Allow $p:local variables. *)
      if peek_char lx = ':' && Xqb_xml.Qname.is_name_start (char_at lx 1) then begin
        advance lx;
        let l = scan_ncname lx in
        Var (n ^ ":" ^ l)
      end
      else Var n
    | '"' | '\'' -> scan_string lx
    | c when is_digit c -> scan_number lx
    | c when Xqb_xml.Qname.is_name_start c ->
      let n = scan_ncname lx in
      (* QName with no intervening space: name:name. A ':=' or '::'
         must not be confused with a prefix separator. *)
      if
        peek_char lx = ':'
        && Xqb_xml.Qname.is_name_start (char_at lx 1)
      then begin
        advance lx;
        let l = scan_ncname lx in
        Qname (n, l)
      end
      else if peek_char lx = ':' && char_at lx 1 = '*' then begin
        (* prefix:* wildcard: represented as Qname (p, "*") *)
        advance lx;
        advance lx;
        Qname (n, "*")
      end
      else Name n
    | c -> fail lx (Printf.sprintf "unexpected character %C" c)

(* ---- Raw scanning for direct constructors (parser-driven) -------- *)

(* Immediately after the parser has consumed '<' and decided this is a
   direct element constructor, it calls these functions, which operate
   at character level from the current position. *)

let raw_peek = peek_char
let raw_advance = advance
let raw_skip_space lx =
  while (not (eof lx)) && is_space (peek_char lx) do
    advance lx
  done

let raw_name lx = scan_ncname lx

let raw_qname lx =
  let n = scan_ncname lx in
  if peek_char lx = ':' && Xqb_xml.Qname.is_name_start (char_at lx 1) then begin
    advance lx;
    let l = scan_ncname lx in
    Xqb_xml.Qname.make ~prefix:n l
  end
  else Xqb_xml.Qname.make n

let raw_expect lx c =
  if peek_char lx <> c then fail lx (Printf.sprintf "expected %C" c);
  advance lx

let raw_looking_at lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = s

let raw_skip_string lx s =
  if not (raw_looking_at lx s) then fail lx (Printf.sprintf "expected %S" s);
  for _ = 1 to String.length s do
    advance lx
  done

(* Scan element-content text up to the next '<', '{' or '}'. Doubled
   braces escape a literal brace. Entity references are expanded. *)
let raw_content_text lx =
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof lx then ()
    else
      match peek_char lx with
      | '<' -> ()
      | '{' ->
        if char_at lx 1 = '{' then begin
          Buffer.add_char buf '{'; advance lx; advance lx; loop ()
        end
      | '}' ->
        if char_at lx 1 = '}' then begin
          Buffer.add_char buf '}'; advance lx; advance lx; loop ()
        end
        else fail lx "unescaped '}' in element content"
      | '&' -> (
        match String.index_from_opt lx.src lx.pos ';' with
        | None -> fail lx "unterminated entity reference"
        | Some j ->
          let name = String.sub lx.src (lx.pos + 1) (j - lx.pos - 1) in
          (try Xqb_xml.Escape.resolve_entity buf name
           with Xqb_xml.Escape.Unknown_entity e -> fail lx ("unknown entity: " ^ e));
          while lx.pos <= j do
            advance lx
          done;
          loop ())
      | c ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
  in
  loop ();
  Buffer.contents buf

(* Scan an attribute value up to the closing quote, splitting into
   text and '{'-enclosed expression segments. The enclosed expressions
   are returned as raw source substrings; the parser re-parses them. *)
let raw_attr_value lx =
  let quote = peek_char lx in
  if quote <> '"' && quote <> '\'' then fail lx "expected attribute value";
  advance lx;
  let segs = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      segs := `Text (Buffer.contents buf) :: !segs;
      Buffer.clear buf
    end
  in
  let rec loop () =
    if eof lx then fail lx "unterminated attribute value";
    let c = peek_char lx in
    if c = quote then begin
      if char_at lx 1 = quote then begin
        Buffer.add_char buf quote; advance lx; advance lx; loop ()
      end
      else advance lx (* done *)
    end
    else if c = '{' then
      if char_at lx 1 = '{' then begin
        Buffer.add_char buf '{'; advance lx; advance lx; loop ()
      end
      else begin
        flush_text ();
        advance lx;
        (* scan to matching '}' honoring nesting and string literals *)
        let start = lx.pos in
        let depth = ref 1 in
        while !depth > 0 do
          if eof lx then fail lx "unterminated enclosed expression";
          (match peek_char lx with
          | '{' -> incr depth
          | '}' -> decr depth
          | '"' | '\'' ->
            let q = peek_char lx in
            advance lx;
            while (not (eof lx)) && peek_char lx <> q do
              advance lx
            done
          | _ -> ());
          if !depth > 0 then advance lx
        done;
        let src = String.sub lx.src start (lx.pos - start) in
        advance lx;  (* consume '}' *)
        segs := `Expr src :: !segs;
        loop ()
      end
    else if c = '}' then
      if char_at lx 1 = '}' then begin
        Buffer.add_char buf '}'; advance lx; advance lx; loop ()
      end
      else fail lx "unescaped '}' in attribute value"
    else if c = '&' then (
      match String.index_from_opt lx.src lx.pos ';' with
      | None -> fail lx "unterminated entity reference"
      | Some j ->
        let name = String.sub lx.src (lx.pos + 1) (j - lx.pos - 1) in
        (try Xqb_xml.Escape.resolve_entity buf name
         with Xqb_xml.Escape.Unknown_entity e -> fail lx ("unknown entity: " ^ e));
        while lx.pos <= j do
          advance lx
        done;
        loop ())
    else begin
      Buffer.add_char buf c;
      advance lx;
      loop ()
    end
  in
  loop ();
  flush_text ();
  List.rev !segs

let raw_until lx stop =
  let rec find i =
    if i + String.length stop > String.length lx.src then
      fail lx (Printf.sprintf "expected %S" stop)
    else if String.sub lx.src i (String.length stop) = stop then i
    else find (i + 1)
  in
  let j = find lx.pos in
  let text = String.sub lx.src lx.pos (j - lx.pos) in
  while lx.pos < j + String.length stop do
    advance lx
  done;
  text
