(** Hand-written lexer for XQuery!.

    XQuery has no reserved words, so the lexer emits generic
    {!type:token}s and the parser decides keyword-hood from context.
    Direct element constructors are lexed through the raw
    character-level entry points at the bottom — the parser switches
    modes, the standard trick for XQuery's context-sensitive grammar. *)

type token =
  | Int of int
  | Decimal of float
  | Double of float
  | Str of string  (** quote-doubling and entity refs already resolved *)
  | Name of string
  | Qname of string * string  (** prefix:local, lexed with no spaces *)
  | Var of string  (** $name *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Dot
  | Dotdot
  | Slash
  | Slashslash
  | At
  | Coloncolon
  | Colonassign
  | Star
  | Plus
  | Minus
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Ltlt
  | Gtgt
  | Bar
  | Question
  | Eof

val token_to_string : token -> string

type t

exception Error of int * int * string  (** line, column, message *)

val make : string -> t

(** Current (line, column). *)
val position : t -> int * int

(** (line, column) where the most recent token returned by {!next}
    started, i.e. the position after skipping trivia and before
    consuming the token's first character. *)
val token_start : t -> int * int

(** Next token; skips whitespace and nestable [(: ... :)] comments. *)
val next : t -> token

val is_space : char -> bool

(** {1 Raw scanning for direct constructors}

    Valid only when the parser has just consumed ['<'] (or is inside
    element content) and its token buffer is empty. *)

val raw_peek : t -> char
val raw_advance : t -> unit
val raw_skip_space : t -> unit
val raw_name : t -> string
val raw_qname : t -> Xqb_xml.Qname.t
val raw_expect : t -> char -> unit
val raw_looking_at : t -> string -> bool
val raw_skip_string : t -> string -> unit

(** Element-content text up to the next ['<'], ['{'] or ['}'];
    doubled braces unescape, entities resolve. *)
val raw_content_text : t -> string

(** Attribute value split into text and ['{']-enclosed expression
    segments (returned as raw source for re-parsing). *)
val raw_attr_value : t -> [ `Text of string | `Expr of string ] list

(** Text before the next occurrence of the terminator (consumed). *)
val raw_until : t -> string -> string
