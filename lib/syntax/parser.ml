(* Recursive-descent parser for XQuery! (Fig. 1 grammar on top of the
   XQuery 1.0 expression grammar).

   XQuery keywords are contextual, so the lexer emits plain names and
   this parser decides keyword-hood from (at most two tokens of)
   lookahead. Direct element constructors switch to the lexer's raw
   character-level entry points, as real XQuery implementations do. *)

module A = Ast
module L = Lexer
module Axes = Xqb_store.Axes
module Qname = Xqb_xml.Qname

exception Error of int * int * string

(* The buffer pairs each lookahead token with its start position so
   effecting expressions can record where their keyword began even
   though the lexer has since moved on. *)
type p = { lx : L.t; mutable buf : (L.token * (int * int)) list }

let fail p msg =
  let line, col = L.position p.lx in
  raise (Error (line, col, msg))

let make src = { lx = L.make src; buf = [] }

let fill p n =
  while List.length p.buf < n do
    let tok = L.next p.lx in
    p.buf <- p.buf @ [ (tok, L.token_start p.lx) ]
  done

let peek p =
  fill p 1;
  fst (List.nth p.buf 0)

let peek2 p =
  fill p 2;
  fst (List.nth p.buf 1)

(* Source location where the current token starts. *)
let peek_loc p =
  fill p 1;
  let line, col = snd (List.nth p.buf 0) in
  { A.line; col }

let advance p =
  match p.buf with
  | _ :: rest -> p.buf <- rest
  | [] -> ignore (L.next p.lx)

let eat p t =
  let cur = peek p in
  if cur = t then advance p
  else
    fail p
      (Printf.sprintf "expected %s but found %s" (L.token_to_string t)
         (L.token_to_string cur))

(* Current token is the contextual keyword [kw]. *)
let at_kw p kw = match peek p with L.Name n -> String.equal n kw | _ -> false

let eat_kw p kw =
  if at_kw p kw then advance p
  else
    fail p
      (Printf.sprintf "expected keyword %S but found %s" kw
         (L.token_to_string (peek p)))

let var_name p =
  match peek p with
  | L.Var v ->
    advance p;
    v
  | t -> fail p ("expected a variable, found " ^ L.token_to_string t)

let qname p =
  match peek p with
  | L.Name n ->
    advance p;
    Qname.make n
  | L.Qname (pre, l) ->
    advance p;
    Qname.make ~prefix:pre l
  | t -> fail p ("expected a name, found " ^ L.token_to_string t)

(* -- Sequence types ------------------------------------------------ *)

let kind_test_names =
  [ "node"; "text"; "comment"; "element"; "attribute"; "document-node";
    "processing-instruction"; "item" ]

let rec parse_item_type p =
  match peek p with
  | L.Name n when List.mem n kind_test_names && peek2 p = L.Lparen -> (
    advance p;
    eat p L.Lparen;
    let arg =
      match peek p with
      | L.Rparen -> None
      | L.Name _ | L.Qname _ -> Some (qname p)
      | L.Str s ->
        advance p;
        Some (Qname.make s)
      | L.Star ->
        advance p;
        None
      | t -> fail p ("unexpected token in kind test: " ^ L.token_to_string t)
    in
    eat p L.Rparen;
    match n with
    | "item" -> A.It_item
    | "node" -> A.It_node
    | "text" -> A.It_text
    | "comment" -> A.It_comment
    | "element" -> A.It_element arg
    | "attribute" -> A.It_attribute arg
    | "document-node" -> A.It_document
    | "processing-instruction" -> A.It_pi
    | _ -> assert false)
  | L.Name _ | L.Qname _ -> A.It_atomic (qname p)
  | t -> fail p ("expected an item type, found " ^ L.token_to_string t)

and parse_seq_type p =
  if at_kw p "empty-sequence" && peek2 p = L.Lparen then begin
    advance p;
    eat p L.Lparen;
    eat p L.Rparen;
    A.St_empty
  end
  else begin
    let it = parse_item_type p in
    let occ =
      match peek p with
      | L.Question ->
        advance p;
        A.Occ_opt
      | L.Star ->
        advance p;
        A.Occ_star
      | L.Plus ->
        advance p;
        A.Occ_plus
      | _ -> A.Occ_one
    in
    A.St (it, occ)
  end

(* -- Expressions ---------------------------------------------------- *)

let update_keywords = [ "insert"; "delete"; "replace"; "rename" ]

let rec parse_expr p =
  let e1 = parse_expr_single p in
  if peek p = L.Comma then begin
    let rec more acc =
      if peek p = L.Comma then begin
        advance p;
        more (parse_expr_single p :: acc)
      end
      else List.rev acc
    in
    A.Seq (more [ e1 ])
  end
  else e1

and parse_expr_single p =
  match peek p with
  | L.Name "for" when (match peek2 p with L.Var _ -> true | _ -> false) ->
    parse_flwor p
  | L.Name "let" when (match peek2 p with L.Var _ -> true | _ -> false) ->
    parse_flwor p
  | L.Name ("some" | "every")
    when (match peek2 p with L.Var _ -> true | _ -> false) ->
    parse_quantified p
  | L.Name "if" when peek2 p = L.Lparen -> parse_if p
  | L.Name "typeswitch" when peek2 p = L.Lparen -> parse_typeswitch p
  | L.Name "snap" -> parse_snap p
  | L.Name "insert" when peek2 p = L.Lbrace -> parse_insert p
  | L.Name "delete" when peek2 p = L.Lbrace ->
    let loc = peek_loc p in
    advance p;
    A.Delete (braced p, loc)
  | L.Name "replace" when peek2 p = L.Lbrace ->
    let loc = peek_loc p in
    advance p;
    let e1 = braced p in
    eat_kw p "with";
    A.Replace (e1, braced p, loc)
  | L.Name "rename" when peek2 p = L.Lbrace ->
    let loc = peek_loc p in
    advance p;
    let e1 = braced p in
    eat_kw p "to";
    A.Rename (e1, braced p, loc)
  | L.Name "copy" when peek2 p = L.Lbrace ->
    advance p;
    A.Copy (braced p)
  (* XQUF transform: copy $v := e (, $w := e)* modify u return r *)
  | L.Name "copy" when (match peek2 p with L.Var _ -> true | _ -> false) ->
    advance p;
    let rec bindings acc =
      let v = var_name p in
      eat p L.Colonassign;
      let e = parse_expr_single p in
      let acc = (v, e) :: acc in
      if peek p = L.Comma then begin
        advance p;
        bindings acc
      end
      else List.rev acc
    in
    let bs = bindings [] in
    eat_kw p "modify";
    let u = parse_expr_single p in
    eat_kw p "return";
    let r = parse_expr_single p in
    A.Transform (bs, u, r)
  (* -- XQuery Update Facility compatibility syntax (the W3C language
     this paper influenced): "insert node(s) E into E",
     "delete node(s) E", "replace (value of)? node E with E",
     "rename node E as E". Brace-free operand form. -- *)
  | L.Name "insert" when (match peek2 p with L.Name ("node" | "nodes") -> true | _ -> false)
    ->
    parse_xquf_insert p
  | L.Name "delete" when (match peek2 p with L.Name ("node" | "nodes") -> true | _ -> false)
    ->
    let loc = peek_loc p in
    advance p;
    advance p;
    A.Delete (parse_expr_single p, loc)
  | L.Name "replace" when (match peek2 p with L.Name ("node" | "value") -> true | _ -> false)
    ->
    parse_xquf_replace p
  | L.Name "rename" when peek2 p = L.Name "node" ->
    let loc = peek_loc p in
    advance p;
    advance p;
    let target = parse_expr_single p in
    eat_kw p "as";
    A.Rename (target, parse_expr_single p, loc)
  | _ -> parse_or p

and parse_xquf_insert p =
  let kw_loc = peek_loc p in
  eat_kw p "insert";
  advance p (* node | nodes *);
  let payload = parse_expr_single p in
  let loc =
    match peek p with
    | L.Name "as" -> (
      advance p;
      match peek p with
      | L.Name "first" ->
        advance p;
        eat_kw p "into";
        A.Into_as_first (parse_expr_single p)
      | L.Name "last" ->
        advance p;
        eat_kw p "into";
        A.Into_as_last (parse_expr_single p)
      | t -> fail p ("expected 'first' or 'last', found " ^ L.token_to_string t))
    | L.Name "into" ->
      advance p;
      A.Into (parse_expr_single p)
    | L.Name "before" ->
      advance p;
      A.Before (parse_expr_single p)
    | L.Name "after" ->
      advance p;
      A.After (parse_expr_single p)
    | t -> fail p ("expected an insert location, found " ^ L.token_to_string t)
  in
  A.Insert (payload, loc, kw_loc)

and parse_xquf_replace p =
  let kw_loc = peek_loc p in
  eat_kw p "replace";
  let value_of =
    if at_kw p "value" then begin
      advance p;
      eat_kw p "of";
      true
    end
    else false
  in
  eat_kw p "node";
  let target = parse_expr_single p in
  eat_kw p "with";
  let replacement = parse_expr_single p in
  if value_of then A.Replace_value (target, replacement, kw_loc)
  else A.Replace (target, replacement, kw_loc)

and braced p =
  eat p L.Lbrace;
  let e = parse_expr p in
  eat p L.Rbrace;
  e

and parse_snap p =
  eat_kw p "snap";
  let mode =
    match peek p with
    | L.Name "ordered" when peek2 p = L.Lbrace ->
      advance p;
      A.Snap_ordered
    | L.Name "nondeterministic" when peek2 p = L.Lbrace ->
      advance p;
      A.Snap_nondeterministic
    | L.Name "conflict" when peek2 p = L.Lbrace ->
      advance p;
      A.Snap_conflict
    | L.Name "atomic" when peek2 p = L.Lbrace ->
      advance p;
      A.Snap_atomic
    | _ -> A.Snap_default
  in
  match peek p with
  | L.Lbrace -> A.Snap (mode, braced p)
  | L.Name kw when List.mem kw update_keywords && peek2 p = L.Lbrace ->
    (* "snap insert {...} into {...}" abbreviates "snap { insert ... }" *)
    A.Snap (mode, parse_expr_single p)
  | t -> fail p ("expected '{' or an update expression after snap, found "
                 ^ L.token_to_string t)

and parse_insert p =
  let kw_loc = peek_loc p in
  eat_kw p "insert";
  let what = braced p in
  let loc =
    match peek p with
    | L.Name "as" -> (
      advance p;
      match peek p with
      | L.Name "first" ->
        advance p;
        eat_kw p "into";
        A.Into_as_first (braced p)
      | L.Name "last" ->
        advance p;
        eat_kw p "into";
        A.Into_as_last (braced p)
      | t -> fail p ("expected 'first' or 'last', found " ^ L.token_to_string t))
    | L.Name "into" ->
      advance p;
      A.Into (braced p)
    | L.Name "before" ->
      advance p;
      A.Before (braced p)
    | L.Name "after" ->
      advance p;
      A.After (braced p)
    | t -> fail p ("expected an insert location, found " ^ L.token_to_string t)
  in
  A.Insert (what, loc, kw_loc)

and parse_flwor p =
  let rec clauses acc =
    match peek p with
    | L.Name "for" when (match peek2 p with L.Var _ -> true | _ -> false) ->
      advance p;
      let rec bindings acc =
        let v = var_name p in
        let posvar =
          if at_kw p "at" then begin
            advance p;
            Some (var_name p)
          end
          else None
        in
        eat_kw p "in";
        let e = parse_expr_single p in
        let acc = (v, posvar, e) :: acc in
        if peek p = L.Comma then begin
          advance p;
          bindings acc
        end
        else List.rev acc
      in
      clauses (A.For (bindings []) :: acc)
    | L.Name "let" when (match peek2 p with L.Var _ -> true | _ -> false) ->
      advance p;
      let rec bindings acc =
        let v = var_name p in
        eat p L.Colonassign;
        let e = parse_expr_single p in
        let acc = (v, e) :: acc in
        if peek p = L.Comma then begin
          advance p;
          bindings acc
        end
        else List.rev acc
      in
      clauses (A.Let (bindings []) :: acc)
    | L.Name "where" ->
      advance p;
      clauses (A.Where (parse_expr_single p) :: acc)
    | _ -> List.rev acc
  in
  let cls = clauses [] in
  let order =
    if at_kw p "order" then begin
      advance p;
      eat_kw p "by";
      let rec specs acc =
        let e = parse_expr_single p in
        let dir =
          match peek p with
          | L.Name "ascending" ->
            advance p;
            A.Ascending
          | L.Name "descending" ->
            advance p;
            A.Descending
          | _ -> A.Ascending
        in
        let acc = (e, dir) :: acc in
        if peek p = L.Comma then begin
          advance p;
          specs acc
        end
        else List.rev acc
      in
      Some (specs [])
    end
    else if at_kw p "stable" then begin
      advance p;
      eat_kw p "order";
      eat_kw p "by";
      let e = parse_expr_single p in
      Some [ (e, A.Ascending) ]
    end
    else None
  in
  eat_kw p "return";
  let body = parse_expr_single p in
  A.Flwor (cls, order, body)

and parse_quantified p =
  let quant =
    if at_kw p "some" then A.Some_q
    else begin
      eat_kw p "every";
      A.Every_q
    end
  in
  if quant = A.Some_q then eat_kw p "some";
  let rec bindings acc =
    let v = var_name p in
    eat_kw p "in";
    let e = parse_expr_single p in
    let acc = (v, e) :: acc in
    if peek p = L.Comma then begin
      advance p;
      bindings acc
    end
    else List.rev acc
  in
  let bs = bindings [] in
  eat_kw p "satisfies";
  A.Quantified (quant, bs, parse_expr_single p)

and parse_if p =
  eat_kw p "if";
  eat p L.Lparen;
  let c = parse_expr p in
  eat p L.Rparen;
  eat_kw p "then";
  let t = parse_expr_single p in
  eat_kw p "else";
  let e = parse_expr_single p in
  A.If (c, t, e)

and parse_or p =
  let rec loop left =
    if at_kw p "or" then begin
      advance p;
      loop (A.Binop (A.Or, left, parse_and p))
    end
    else left
  in
  loop (parse_and p)

and parse_and p =
  let rec loop left =
    if at_kw p "and" then begin
      advance p;
      loop (A.Binop (A.And, left, parse_comparison p))
    end
    else left
  in
  loop (parse_comparison p)

and parse_comparison p =
  let left = parse_range p in
  let op =
    match peek p with
    | L.Eq -> Some A.Gen_eq
    | L.Ne -> Some A.Gen_ne
    | L.Lt -> Some A.Gen_lt
    | L.Le -> Some A.Gen_le
    | L.Gt -> Some A.Gen_gt
    | L.Ge -> Some A.Gen_ge
    | L.Ltlt -> Some A.Precedes
    | L.Gtgt -> Some A.Follows
    | L.Name "eq" -> Some A.Val_eq
    | L.Name "ne" -> Some A.Val_ne
    | L.Name "lt" -> Some A.Val_lt
    | L.Name "le" -> Some A.Val_le
    | L.Name "gt" -> Some A.Val_gt
    | L.Name "ge" -> Some A.Val_ge
    | L.Name "is" -> Some A.Is
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance p;
    A.Binop (op, left, parse_range p)

and parse_range p =
  let left = parse_additive p in
  if at_kw p "to" then begin
    advance p;
    A.Binop (A.To, left, parse_additive p)
  end
  else left

and parse_additive p =
  let rec loop left =
    match peek p with
    | L.Plus ->
      advance p;
      loop (A.Binop (A.Add, left, parse_multiplicative p))
    | L.Minus ->
      advance p;
      loop (A.Binop (A.Sub, left, parse_multiplicative p))
    | _ -> left
  in
  loop (parse_multiplicative p)

and parse_multiplicative p =
  let rec loop left =
    match peek p with
    | L.Star ->
      advance p;
      loop (A.Binop (A.Mul, left, parse_union p))
    | L.Name "div" ->
      advance p;
      loop (A.Binop (A.Div, left, parse_union p))
    | L.Name "idiv" ->
      advance p;
      loop (A.Binop (A.Idiv, left, parse_union p))
    | L.Name "mod" ->
      advance p;
      loop (A.Binop (A.Mod, left, parse_union p))
    | _ -> left
  in
  loop (parse_union p)

and parse_union p =
  let rec loop left =
    match peek p with
    | L.Bar | L.Name "union" ->
      advance p;
      loop (A.Binop (A.Union, left, parse_intersect p))
    | _ -> left
  in
  loop (parse_intersect p)

and parse_intersect p =
  let rec loop left =
    match peek p with
    | L.Name "intersect" ->
      advance p;
      loop (A.Binop (A.Intersect, left, parse_instance_of p))
    | L.Name "except" ->
      advance p;
      loop (A.Binop (A.Except, left, parse_instance_of p))
    | _ -> left
  in
  loop (parse_instance_of p)

and parse_instance_of p =
  let left = parse_cast p in
  if at_kw p "instance" then begin
    advance p;
    eat_kw p "of";
    A.Instance_of (left, parse_seq_type p)
  end
  else left

and parse_cast p =
  let left = parse_unary p in
  if at_kw p "cast" then begin
    advance p;
    eat_kw p "as";
    let t = parse_item_type p in
    (* allow the single-type '?' of "cast as T?" *)
    if peek p = L.Question then advance p;
    A.Cast_as (left, t)
  end
  else if at_kw p "castable" then begin
    advance p;
    eat_kw p "as";
    let t = parse_item_type p in
    if peek p = L.Question then advance p;
    A.Castable_as (left, t)
  end
  else if at_kw p "treat" then begin
    advance p;
    eat_kw p "as";
    A.Treat_as (left, parse_seq_type p)
  end
  else left

and parse_typeswitch p =
  eat_kw p "typeswitch";
  eat p L.Lparen;
  let scrutinee = parse_expr p in
  eat p L.Rparen;
  let rec cases acc =
    if at_kw p "case" then begin
      advance p;
      let v =
        match peek p with
        | L.Var v ->
          advance p;
          eat_kw p "as";
          Some v
        | _ -> None
      in
      let ty = parse_seq_type p in
      eat_kw p "return";
      let body = parse_expr_single p in
      cases ((v, ty, body) :: acc)
    end
    else List.rev acc
  in
  let cs = cases [] in
  if cs = [] then fail p "typeswitch needs at least one case";
  eat_kw p "default";
  let dv =
    match peek p with
    | L.Var v ->
      advance p;
      Some v
    | _ -> None
  in
  eat_kw p "return";
  let dbody = parse_expr_single p in
  A.Typeswitch (scrutinee, cs, dv, dbody)

and parse_unary p =
  match peek p with
  | L.Minus ->
    advance p;
    A.Unary_minus (parse_unary p)
  | L.Plus ->
    advance p;
    parse_unary p
  | _ -> parse_path p

(* Path expressions. *)
and parse_path p =
  match peek p with
  | L.Slash ->
    advance p;
    if can_start_step p then parse_relative p A.Root else A.Root
  | L.Slashslash ->
    advance p;
    let dos =
      A.Path
        (A.Root, { A.axis = Axes.Descendant_or_self; test = Axes.Kind_node; preds = [] })
    in
    parse_relative p dos
  | _ ->
    let first = parse_step_expr p in
    parse_relative_cont p first

and parse_relative p left =
  let e =
    if starts_axis_step p then apply_step left (parse_step p)
    else A.Path_general (left, parse_postfix p)
  in
  parse_relative_cont p e

(* Does the current token begin an axis step (as opposed to a primary
   expression used as a path step, e.g. [a/string()])? *)
and starts_axis_step p =
  match peek p with
  | L.At | L.Dotdot | L.Star -> true
  | L.Name _ when peek2 p = L.Coloncolon -> true
  | L.Name n when List.mem n kind_test_names && n <> "item" && peek2 p = L.Lparen
    ->
    true
  | L.Name ("element" | "attribute")
    when (match peek2 p with L.Lbrace | L.Name _ | L.Qname _ -> true | _ -> false)
    ->
    false
  | L.Name ("text" | "document" | "ordered" | "unordered" | "comment") when peek2 p = L.Lbrace
    ->
    false
  | L.Name "processing-instruction"
    when (match peek2 p with L.Lbrace | L.Name _ | L.Qname _ -> true | _ -> false)
    ->
    false
  | L.Name _ | L.Qname _ when peek2 p <> L.Lparen -> true
  | _ -> false

and parse_relative_cont p left =
  match peek p with
  | L.Slash ->
    advance p;
    parse_relative p left
  | L.Slashslash ->
    advance p;
    let dos =
      A.Path
        (left, { A.axis = Axes.Descendant_or_self; test = Axes.Kind_node; preds = [] })
    in
    parse_relative p dos
  | _ -> left

and apply_step left (step : A.step) = A.Path (left, step)

and can_start_step p =
  match peek p with
  | L.Name _ | L.Qname _ | L.Star | L.At | L.Dot | L.Dotdot | L.Var _
  | L.Lparen | L.Int _ | L.Decimal _ | L.Double _ | L.Str _ | L.Lt ->
    true
  | _ -> false

(* A step in a path: either an axis step or a postfix (primary +
   predicates) expression. *)
and parse_step_expr p =
  match peek p with
  | L.At | L.Dotdot -> step_to_expr p (parse_step p)
  | L.Star -> step_to_expr p (parse_step p)
  | L.Name _ when peek2 p = L.Coloncolon -> step_to_expr p (parse_step p)
  | L.Name n when List.mem n kind_test_names && n <> "item" && peek2 p = L.Lparen ->
    step_to_expr p (parse_step p)
  (* Computed constructors and ordered{}/unordered{} start with a name
     but are primaries, not steps. *)
  | L.Name ("element" | "attribute")
    when (match peek2 p with L.Lbrace | L.Name _ | L.Qname _ -> true | _ -> false)
    ->
    parse_postfix p
  | L.Name ("text" | "document" | "ordered" | "unordered" | "comment") when peek2 p = L.Lbrace
    ->
    parse_postfix p
  | L.Name "processing-instruction"
    when (match peek2 p with L.Lbrace | L.Name _ | L.Qname _ -> true | _ -> false)
    ->
    parse_postfix p
  | L.Name _ | L.Qname _ when peek2 p <> L.Lparen -> step_to_expr p (parse_step p)
  | _ -> parse_postfix p

and step_to_expr p step =
  ignore p;
  (* A leading axis step is a path from the context item. *)
  A.Path (A.Context_item, step)

and parse_step p : A.step =
  match peek p with
  | L.Dotdot ->
    advance p;
    { A.axis = Axes.Parent; test = Axes.Kind_node; preds = parse_predicates p }
  | L.At ->
    advance p;
    let test = parse_node_test p in
    { A.axis = Axes.Attribute; test; preds = parse_predicates p }
  | L.Name n when peek2 p = L.Coloncolon ->
    let axis =
      match n with
      | "child" -> Axes.Child
      | "descendant" -> Axes.Descendant
      | "descendant-or-self" -> Axes.Descendant_or_self
      | "attribute" -> Axes.Attribute
      | "self" -> Axes.Self
      | "parent" -> Axes.Parent
      | "ancestor" -> Axes.Ancestor
      | "ancestor-or-self" -> Axes.Ancestor_or_self
      | "following-sibling" -> Axes.Following_sibling
      | "preceding-sibling" -> Axes.Preceding_sibling
      | "following" -> Axes.Following
      | "preceding" -> Axes.Preceding
      | a -> fail p ("unknown axis: " ^ a)
    in
    advance p;
    eat p L.Coloncolon;
    let test = parse_node_test p in
    { A.axis; test; preds = parse_predicates p }
  | _ ->
    let test = parse_node_test p in
    { A.axis = Axes.Child; test; preds = parse_predicates p }

and parse_node_test p =
  match peek p with
  | L.Star ->
    advance p;
    Axes.Wildcard
  | L.Name n when List.mem n kind_test_names && n <> "item" && peek2 p = L.Lparen
    -> (
    advance p;
    eat p L.Lparen;
    let arg =
      match peek p with
      | L.Rparen -> None
      | L.Name _ | L.Qname _ -> Some (qname p)
      | L.Str s ->
        advance p;
        Some (Qname.make s)
      | t -> fail p ("unexpected token in kind test: " ^ L.token_to_string t)
    in
    eat p L.Rparen;
    match n with
    | "node" -> Axes.Kind_node
    | "text" -> Axes.Kind_text
    | "comment" -> Axes.Kind_comment
    | "element" -> Axes.Kind_element arg
    | "attribute" -> Axes.Kind_attribute arg
    | "document-node" -> Axes.Kind_document
    | "processing-instruction" ->
      Axes.Kind_pi (Option.map Qname.to_string arg)
    | _ -> assert false)
  | L.Name _ | L.Qname _ ->
    let q = qname p in
    if Qname.local q = "*" then Axes.Wildcard else Axes.Name q
  | t -> fail p ("expected a node test, found " ^ L.token_to_string t)

and parse_predicates p =
  let rec loop acc =
    if peek p = L.Lbracket then begin
      advance p;
      let e = parse_expr p in
      eat p L.Rbracket;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_postfix p =
  let prim = parse_primary p in
  match parse_predicates p with
  | [] -> prim
  | preds -> A.Filter (prim, preds)

and parse_primary p =
  match peek p with
  | L.Int i ->
    advance p;
    A.Literal (A.Lit_integer i)
  | L.Decimal f ->
    advance p;
    A.Literal (A.Lit_decimal f)
  | L.Double f ->
    advance p;
    A.Literal (A.Lit_double f)
  | L.Str s ->
    advance p;
    A.Literal (A.Lit_string s)
  | L.Var v ->
    advance p;
    A.Var v
  | L.Dot ->
    advance p;
    A.Context_item
  | L.Lparen ->
    advance p;
    if peek p = L.Rparen then begin
      advance p;
      A.Seq []
    end
    else begin
      let e = parse_expr p in
      eat p L.Rparen;
      e
    end
  | L.Lt ->
    advance p;
    parse_direct_constructor p
  | L.Name ("ordered" | "unordered") when peek2 p = L.Lbrace ->
    advance p;
    braced p
  | L.Name "element" when is_comp_ctor_name p -> parse_comp_elem p
  | L.Name "attribute" when is_comp_ctor_name p -> parse_comp_attr p
  | L.Name "text" when peek2 p = L.Lbrace ->
    advance p;
    A.Comp_text (braced p)
  | L.Name "comment" when peek2 p = L.Lbrace ->
    advance p;
    A.Comp_comment (braced p)
  | L.Name "processing-instruction" when is_comp_ctor_name p ->
    advance p;
    let name =
      match peek p with
      | L.Lbrace -> A.Dynamic_name (braced p)
      | _ -> A.Static_name (qname p)
    in
    A.Comp_pi (name, braced p)
  | L.Name "document" when peek2 p = L.Lbrace ->
    advance p;
    A.Comp_doc (braced p)
  | L.Name _ | L.Qname _ when peek2 p = L.Lparen -> parse_call p
  | t -> fail p ("unexpected token " ^ L.token_to_string t)

(* "element foo { e }" or "element { e1 } { e2 }" *)
and is_comp_ctor_name p =
  match peek2 p with
  | L.Lbrace -> true
  | L.Name _ | L.Qname _ -> true
  | _ -> false

and parse_comp_elem p =
  eat_kw p "element";
  let name =
    match peek p with
    | L.Lbrace -> A.Dynamic_name (braced p)
    | _ -> A.Static_name (qname p)
  in
  A.Comp_elem (name, braced p)

and parse_comp_attr p =
  eat_kw p "attribute";
  let name =
    match peek p with
    | L.Lbrace -> A.Dynamic_name (braced p)
    | _ -> A.Static_name (qname p)
  in
  A.Comp_attr (name, braced p)

and parse_call p =
  let f = qname p in
  eat p L.Lparen;
  let args =
    if peek p = L.Rparen then []
    else begin
      let rec more acc =
        let e = parse_expr_single p in
        if peek p = L.Comma then begin
          advance p;
          more (e :: acc)
        end
        else List.rev (e :: acc)
      in
      more []
    end
  in
  eat p L.Rparen;
  A.Call (f, args)

(* -- Direct element constructors (raw lexing) ----------------------- *)

(* Called with the '<' already consumed and the token buffer empty. *)
and parse_direct_constructor p =
  assert (p.buf = []);
  let name = L.raw_qname p.lx in
  let rec attrs acc =
    L.raw_skip_space p.lx;
    match L.raw_peek p.lx with
    | '/' | '>' -> List.rev acc
    | _ ->
      let an = L.raw_qname p.lx in
      L.raw_skip_space p.lx;
      L.raw_expect p.lx '=';
      L.raw_skip_space p.lx;
      let segs = L.raw_attr_value p.lx in
      let avts =
        List.map
          (function
            | `Text s -> A.Avt_text s
            | `Expr src -> A.Avt_expr (parse_sub src))
          segs
      in
      attrs ((an, avts) :: acc)
  in
  let attributes = attrs [] in
  match L.raw_peek p.lx with
  | '/' ->
    L.raw_advance p.lx;
    L.raw_expect p.lx '>';
    A.Dir_elem (name, attributes, [])
  | '>' ->
    L.raw_advance p.lx;
    let content = parse_dir_content p name in
    A.Dir_elem (name, attributes, content)
  | c -> fail p (Printf.sprintf "unexpected %C in element constructor" c)

and parse_dir_content p elem_name =
  let is_boundary_ws s = String.for_all (fun c -> L.is_space c) s in
  let rec loop acc =
    let text = L.raw_content_text p.lx in
    let acc =
      if text = "" || is_boundary_ws text then acc else A.C_text text :: acc
    in
    if L.raw_looking_at p.lx "</" then begin
      L.raw_skip_string p.lx "</";
      let close = L.raw_qname p.lx in
      if not (Qname.equal close elem_name) then
        fail p
          (Printf.sprintf "mismatched end tag </%s>, expected </%s>"
             (Qname.to_string close) (Qname.to_string elem_name));
      L.raw_skip_space p.lx;
      L.raw_expect p.lx '>';
      List.rev acc
    end
    else if L.raw_looking_at p.lx "<!--" then begin
      L.raw_skip_string p.lx "<!--";
      let body = L.raw_until p.lx "-->" in
      loop (A.C_comment body :: acc)
    end
    else if L.raw_looking_at p.lx "<![CDATA[" then begin
      L.raw_skip_string p.lx "<![CDATA[";
      let body = L.raw_until p.lx "]]>" in
      loop (A.C_text body :: acc)
    end
    else if L.raw_looking_at p.lx "<?" then begin
      L.raw_skip_string p.lx "<?";
      let target = L.raw_name p.lx in
      L.raw_skip_space p.lx;
      let body = L.raw_until p.lx "?>" in
      loop (A.C_pi (target, body) :: acc)
    end
    else if L.raw_peek p.lx = '<' then begin
      L.raw_advance p.lx;
      let nested = parse_direct_constructor p in
      loop (A.C_elem nested :: acc)
    end
    else if L.raw_peek p.lx = '{' then begin
      L.raw_advance p.lx;
      (* Switch to token mode for the enclosed expression. *)
      let e = parse_expr p in
      eat p L.Rbrace;
      assert (p.buf = []);
      loop (A.C_expr e :: acc)
    end
    else fail p "unterminated element constructor"
  in
  loop []

and parse_sub src =
  let sub = make src in
  let e = parse_expr sub in
  (match peek sub with
  | L.Eof -> ()
  | t -> fail sub ("trailing tokens in enclosed expression: " ^ L.token_to_string t));
  e

(* -- Prolog and program --------------------------------------------- *)

let parse_decl p =
  eat_kw p "declare";
  match peek p with
  | L.Name "variable" ->
    advance p;
    let v = var_name p in
    let ty =
      if at_kw p "as" then begin
        advance p;
        Some (parse_seq_type p)
      end
      else None
    in
    eat p L.Colonassign;
    let e = parse_expr_single p in
    Some (A.Decl_variable (v, ty, e))
  | L.Name "function" ->
    advance p;
    let f = qname p in
    eat p L.Lparen;
    let params =
      if peek p = L.Rparen then []
      else begin
        let rec more acc =
          let v = var_name p in
          let ty =
            if at_kw p "as" then begin
              advance p;
              Some (parse_seq_type p)
            end
            else None
          in
          let acc = (v, ty) :: acc in
          if peek p = L.Comma then begin
            advance p;
            more acc
          end
          else List.rev acc
        in
        more []
      end
    in
    eat p L.Rparen;
    let ret =
      if at_kw p "as" then begin
        advance p;
        Some (parse_seq_type p)
      end
      else None
    in
    let body = braced p in
    Some (A.Decl_function (f, params, ret, body))
  | L.Name "namespace" ->
    (* declare namespace p = "uri"; accepted and recorded nowhere:
       names are compared on prefixes in this reproduction. *)
    advance p;
    let _prefix = qname p in
    eat p L.Eq;
    (match peek p with
    | L.Str _ -> advance p
    | t -> fail p ("expected a URI literal, found " ^ L.token_to_string t));
    None
  | t -> fail p ("unexpected declaration: " ^ L.token_to_string t)

let parse_prog src =
  let p = make src in
  let rec prolog acc =
    if at_kw p "declare" then begin
      let d = parse_decl p in
      (match peek p with
      | L.Semi -> advance p
      | t -> fail p ("expected ';' after declaration, found " ^ L.token_to_string t));
      prolog (match d with Some d -> d :: acc | None -> acc)
    end
    else List.rev acc
  in
  let prolog = prolog [] in
  let body = if peek p = L.Eof then None else Some (parse_expr p) in
  (match peek p with
  | L.Eof -> ()
  | t -> fail p ("trailing tokens after query body: " ^ L.token_to_string t));
  { A.prolog; body }

let parse_expr_string src =
  let p = make src in
  let e = parse_expr p in
  (match peek p with
  | L.Eof -> ()
  | t -> fail p ("trailing tokens: " ^ L.token_to_string t));
  e
