(* Pretty-printer for the surface AST. Output re-parses to the same
   AST (checked by a qcheck round-trip property in the test suite), so
   it over-parenthesizes rather than track precedence minimally. *)

module A = Ast
module Axes = Xqb_store.Axes
module Qname = Xqb_xml.Qname

let escape_string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\"\""
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr buf (e : A.expr) =
  let add = Buffer.add_string buf in
  match e with
  | A.Literal (A.Lit_integer i) ->
    if i < 0 then add (Printf.sprintf "(%d)" i) else add (string_of_int i)
  | A.Literal (A.Lit_decimal f) -> add (Printf.sprintf "%.6f" f)
  | A.Literal (A.Lit_double f) ->
    (* a lexically valid DoubleLiteral: ensure an exponent part; INF
       and NaN have no literal form, so print the constructor call *)
    if Float.is_nan f then add "xs:double(\"NaN\")"
    else if f = Float.infinity then add "xs:double(\"INF\")"
    else if f = Float.neg_infinity then add "(-xs:double(\"INF\"))"
    else begin
      let s = Printf.sprintf "%.17g" f in
      if String.contains s 'e' || String.contains s 'E' then add s
      else add (s ^ "e0")
    end
  | A.Literal (A.Lit_string s) -> add ("\"" ^ escape_string_literal s ^ "\"")
  | A.Var v -> add ("$" ^ v)
  | A.Context_item -> add "."
  | A.Seq [] -> add "()"
  | A.Seq es ->
    add "(";
    List.iteri
      (fun i e ->
        if i > 0 then add ", ";
        expr buf e)
      es;
    add ")"
  | A.Root -> add "/"
  | A.Path (A.Root, s) ->
    add "/";
    step buf s
  | A.Path (A.Context_item, s) -> step buf s
  | A.Path (e, s) ->
    sub buf e;
    add "/";
    step buf s
  | A.Path_general (l, r) ->
    sub buf l;
    add "/";
    sub buf r
  | A.Filter (e, preds) ->
    sub buf e;
    List.iter
      (fun pe ->
        add "[";
        expr buf pe;
        add "]")
      preds
  | A.Flwor (clauses, order, ret) ->
    add "(";
    List.iter
      (fun c ->
        (match c with
        | A.For bindings ->
          add "for ";
          List.iteri
            (fun i (v, pos, e) ->
              if i > 0 then add ", ";
              add ("$" ^ v);
              (match pos with Some pv -> add (" at $" ^ pv) | None -> ());
              add " in ";
              expr buf e)
            bindings
        | A.Let bindings ->
          add "let ";
          List.iteri
            (fun i (v, e) ->
              if i > 0 then add ", ";
              add ("$" ^ v ^ " := ");
              expr buf e)
            bindings
        | A.Where e ->
          add "where ";
          expr buf e);
        add " ")
      clauses;
    (match order with
    | None -> ()
    | Some specs ->
      add "order by ";
      List.iteri
        (fun i (e, dir) ->
          if i > 0 then add ", ";
          expr buf e;
          match dir with
          | A.Ascending -> ()
          | A.Descending -> add " descending")
        specs;
      add " ");
    add "return ";
    expr buf ret;
    add ")"
  | A.Quantified (q, bindings, sat) ->
    add "(";
    add (match q with A.Some_q -> "some " | A.Every_q -> "every ");
    List.iteri
      (fun i (v, e) ->
        if i > 0 then add ", ";
        add ("$" ^ v ^ " in ");
        expr buf e)
      bindings;
    add " satisfies ";
    expr buf sat;
    add ")"
  | A.If (c, t, e) ->
    add "(if (";
    expr buf c;
    add ") then ";
    expr buf t;
    add " else ";
    expr buf e;
    add ")"
  | A.Binop (op, l, r) ->
    add "(";
    sub buf l;
    add (" " ^ A.binop_to_string op ^ " ");
    sub buf r;
    add ")"
  | A.Unary_minus e ->
    add "(-";
    sub buf e;
    add ")"
  | A.Call (f, args) ->
    add (Qname.to_string f);
    add "(";
    List.iteri
      (fun i a ->
        if i > 0 then add ", ";
        expr buf a)
      args;
    add ")"
  | A.Instance_of (e, t) ->
    add "(";
    sub buf e;
    add (" instance of " ^ A.seq_type_to_string t);
    add ")"
  | A.Cast_as (e, t) ->
    add "(";
    sub buf e;
    add (" cast as " ^ A.item_type_to_string t);
    add ")"
  | A.Castable_as (e, t) ->
    add "(";
    sub buf e;
    add (" castable as " ^ A.item_type_to_string t);
    add ")"
  | A.Treat_as (e, t) ->
    add "(";
    sub buf e;
    add (" treat as " ^ A.seq_type_to_string t);
    add ")"
  | A.Typeswitch (scrut, cases, dv, dbody) ->
    add "(typeswitch (";
    expr buf scrut;
    add ")";
    List.iter
      (fun (v, ty, body) ->
        add " case ";
        (match v with Some v -> add ("$" ^ v ^ " as ") | None -> ());
        add (A.seq_type_to_string ty);
        add " return ";
        expr buf body)
      cases;
    add " default ";
    (match dv with Some v -> add ("$" ^ v ^ " ") | None -> ());
    add "return ";
    expr buf dbody;
    add ")"
  | A.Dir_elem (name, attrs, content) ->
    add ("<" ^ Qname.to_string name);
    List.iter
      (fun (an, avts) ->
        add (" " ^ Qname.to_string an ^ "=\"");
        List.iter
          (fun seg ->
            match seg with
            | A.Avt_text s ->
              add (Xqb_xml.Escape.attr (brace_escape s))
            | A.Avt_expr e ->
              add "{";
              expr buf e;
              add "}")
          avts;
        add "\"")
      attrs;
    if content = [] then add "/>"
    else begin
      add ">";
      List.iter
        (fun c ->
          match c with
          | A.C_text s -> add (Xqb_xml.Escape.text (brace_escape s))
          | A.C_expr e ->
            add "{";
            expr buf e;
            add "}"
          | A.C_elem e -> expr buf e
          | A.C_comment s -> add ("<!--" ^ s ^ "-->")
          | A.C_pi (t, c) -> add ("<?" ^ t ^ " " ^ c ^ "?>"))
        content;
      add ("</" ^ Qname.to_string name ^ ">")
    end
  | A.Comp_elem (name, content) ->
    add "element ";
    name_spec buf name;
    add " {";
    expr buf content;
    add "}"
  | A.Comp_attr (name, content) ->
    add "attribute ";
    name_spec buf name;
    add " {";
    expr buf content;
    add "}"
  | A.Comp_text e ->
    add "text {";
    expr buf e;
    add "}"
  | A.Comp_comment e ->
    add "comment {";
    expr buf e;
    add "}"
  | A.Comp_pi (ns, e) ->
    add "processing-instruction ";
    name_spec buf ns;
    add " {";
    expr buf e;
    add "}"
  | A.Comp_doc e ->
    add "document {";
    expr buf e;
    add "}"
  | A.Insert (what, loc, _) ->
    add "insert {";
    expr buf what;
    add "} ";
    (match loc with
    | A.Into e ->
      add "into {";
      expr buf e;
      add "}"
    | A.Into_as_first e ->
      add "as first into {";
      expr buf e;
      add "}"
    | A.Into_as_last e ->
      add "as last into {";
      expr buf e;
      add "}"
    | A.Before e ->
      add "before {";
      expr buf e;
      add "}"
    | A.After e ->
      add "after {";
      expr buf e;
      add "}")
  | A.Delete (e, _) ->
    add "delete {";
    expr buf e;
    add "}"
  | A.Replace (e1, e2, _) ->
    add "replace {";
    expr buf e1;
    add "} with {";
    expr buf e2;
    add "}"
  | A.Replace_value (e1, e2, _) ->
    add "replace value of node ";
    sub buf e1;
    add " with ";
    sub buf e2
  | A.Rename (e1, e2, _) ->
    add "rename {";
    expr buf e1;
    add "} to {";
    expr buf e2;
    add "}"
  | A.Copy e ->
    add "copy {";
    expr buf e;
    add "}"
  | A.Transform (bs, u, r) ->
    add "(copy ";
    List.iteri
      (fun i (v, e) ->
        if i > 0 then add ", ";
        add ("$" ^ v ^ " := ");
        expr buf e)
      bs;
    add " modify ";
    expr buf u;
    add " return ";
    expr buf r;
    add ")"
  | A.Snap (mode, e) ->
    add "snap ";
    (match A.snap_mode_to_string mode with
    | "" -> ()
    | m -> add (m ^ " "));
    add "{";
    expr buf e;
    add "}"

(* Double the braces that are literal text inside constructors. *)
and brace_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '{' -> Buffer.add_string buf "{{"
      | '}' -> Buffer.add_string buf "}}"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

and name_spec buf = function
  | A.Static_name q -> Buffer.add_string buf (Qname.to_string q)
  | A.Dynamic_name e ->
    Buffer.add_string buf "{";
    expr buf e;
    Buffer.add_string buf "}"

(* Sub-expressions that may need parentheses in step/operand
   position. Paths and filters would otherwise glue to the enclosing
   operator; the update operations, copy and snap are only recognized
   at ExprSingle level, so as operands they need parentheses too. *)
and sub buf (e : A.expr) =
  match e with
  | A.Path _ | A.Path_general _ | A.Filter _
  | A.Insert _ | A.Delete _ | A.Replace _ | A.Replace_value _ | A.Rename _
  | A.Copy _ | A.Snap _
  | A.Comp_elem _ | A.Comp_attr _ | A.Comp_text _ | A.Comp_comment _
  | A.Comp_pi _ | A.Comp_doc _ ->
    Buffer.add_string buf "(";
    expr buf e;
    Buffer.add_string buf ")"
  | _ -> expr buf e

and step buf (s : A.step) =
  let add = Buffer.add_string buf in
  (match s.A.axis with
  | Axes.Child -> ()
  | Axes.Attribute -> add "@"
  | ax -> add (Axes.axis_to_string ax ^ "::"));
  add (Axes.node_test_to_string s.A.test);
  List.iter
    (fun pe ->
      add "[";
      expr buf pe;
      add "]")
    s.A.preds

let expr_to_string e =
  let buf = Buffer.create 128 in
  expr buf e;
  Buffer.contents buf

let decl_to_string (d : A.decl) =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  (match d with
  | A.Decl_variable (v, ty, e) ->
    add ("declare variable $" ^ v);
    (match ty with
    | Some t -> add (" as " ^ A.seq_type_to_string t)
    | None -> ());
    add " := ";
    expr buf e
  | A.Decl_function (f, params, ret, body) ->
    add ("declare function " ^ Qname.to_string f ^ "(");
    List.iteri
      (fun i (v, ty) ->
        if i > 0 then add ", ";
        add ("$" ^ v);
        match ty with
        | Some t -> add (" as " ^ A.seq_type_to_string t)
        | None -> ())
      params;
    add ")";
    (match ret with
    | Some t -> add (" as " ^ A.seq_type_to_string t)
    | None -> ());
    add " { ";
    expr buf body;
    add " }");
  add ";";
  Buffer.contents buf

let prog_to_string (prog : A.prog) =
  let decls = List.map decl_to_string prog.A.prolog in
  let body = Option.map expr_to_string prog.A.body in
  String.concat "\n" (decls @ Option.to_list body)
