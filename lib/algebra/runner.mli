(** Optimizing front end: the [Core.Engine] pipeline with the
    algebraic compilation step of §4.2 between normalization and
    evaluation. *)

type run_result = {
  value : Xqb_xdm.Value.t;
  plan : Plan.vplan;
  fired : string list;  (** rewrites that fired *)
  rejected : (string * string) list;  (** rewrites rejected by a guard, with reasons *)
  stats : Exec.stats;
  profile : Profile.t option;
      (** per-operator counters; [Some] only from {!analyze} *)
  ddo_elided : int;
      (** statically elided ddo sorts actually hit during execution
          (the EXPLAIN ANALYZE elision counter) *)
  footprint : Core.Static.Footprint.t;
      (** static effects footprint of the program (the regions the
          service's disjointness scheduler gates on); rendered as a
          [-- footprint:] line by {!analyze} and {!explain} *)
}

(** Compile a program and the optimized plan of its body (under the
    implicit top-level snap). @raise Core.Engine.Compile_error. *)
val plan_of :
  ?mode:Core.Core_ast.snap_mode ->
  Core.Engine.t ->
  string ->
  Core.Engine.compiled * Compile.result

(** Compile, optimize and execute. Semantics identical to
    [Core.Engine.run] (asserted by the equivalence tests). *)
val run : ?mode:Core.Core_ast.snap_mode -> Core.Engine.t -> string -> run_result

(** EXPLAIN ANALYZE: like {!run} but with per-operator profiling; the
    string is the annotated plan tree ({!Profile.render}). The query
    executes for real, side effects included. *)
val analyze :
  ?mode:Core.Core_ast.snap_mode -> Core.Engine.t -> string -> run_result * string

(** Pretty-printed optimized plan (the paper's §4.3 plan syntax),
    without executing. *)
val explain : ?mode:Core.Core_ast.snap_mode -> Core.Engine.t -> string -> string
