(* Optimizing front end: the same pipeline as [Core.Engine.run] with
   the algebraic compilation step of §4.2 inserted between
   normalization and evaluation. *)

module Engine = Core.Engine
module C = Core.Core_ast

type run_result = {
  value : Xqb_xdm.Value.t;
  plan : Plan.vplan;
  fired : string list;  (* rewrites that fired *)
  rejected : (string * string) list;  (* rewrites rejected by a guard *)
  stats : Exec.stats;
  profile : Profile.t option;  (* per-operator counters (analyze only) *)
  ddo_elided : int;  (* statically elided ddo sorts hit during exec *)
  footprint : Core.Static.Footprint.t;
    (* static effects footprint of the whole program — what the
       service's disjointness scheduler gates on *)
}

(* Compile [source] and return the optimized plan for its body (under
   the implicit top-level snap). *)
let plan_of ?(mode = C.Snap_ordered) engine source =
  let compiled = Engine.compile engine source in
  let ctx = Engine.context engine in
  Core.Context.span ~cat:"compile" ctx "algebra.compile" @@ fun () ->
  let purity = Core.Static.purity_oracle compiled.Engine.prog in
  let body =
    match compiled.Engine.prog.Core.Normalize.body with
    | Some b -> C.Snap (mode, b)
    | None -> C.Empty
  in
  (compiled, Compile.compile ~purity body)

let run_with ?(mode = C.Snap_ordered) ~profile engine source : run_result =
  let compiled, cres = plan_of ~mode engine source in
  Engine.eval_globals ~mode engine compiled;
  let stats = Exec.new_stats () in
  let prof = if profile then Some (Profile.create cres.Compile.plan) else None in
  let ctx = Engine.context engine in
  let elided_before = ctx.Core.Context.ddo_elided in
  let value =
    Core.Context.span ~cat:"exec" ctx "exec.plan" (fun () ->
        Exec.exec ~stats ?prof ctx ctx.Core.Context.globals cres.Compile.plan)
  in
  {
    value;
    plan = cres.Compile.plan;
    fired = cres.Compile.fired;
    rejected = cres.Compile.rejected;
    stats;
    profile = prof;
    ddo_elided = ctx.Core.Context.ddo_elided - elided_before;
    footprint = Core.Static.Footprint.of_prog compiled.Engine.prog;
  }

let run ?mode engine source = run_with ?mode ~profile:false engine source

(* EXPLAIN ANALYZE: execute with per-operator profiling and render the
   annotated plan. The query runs for real — side effects included —
   which is the only honest way to report actual cardinalities for a
   language with side effects. *)
let analyze ?mode engine source : run_result * string =
  let r = run_with ?mode ~profile:true engine source in
  let rendered =
    match r.profile with
    | Some p -> Profile.render r.plan p
    | None -> Plan.explain r.plan
  in
  let rendered =
    if r.ddo_elided > 0 then
      Printf.sprintf "%s\n-- ddo sorts elided: %d" rendered r.ddo_elided
    else rendered
  in
  let rendered =
    Printf.sprintf "%s\n-- footprint: %s" rendered
      (Core.Static.Footprint.to_string r.footprint)
  in
  (r, rendered)

let explain ?mode engine source =
  let compiled, cres = plan_of ?mode engine source in
  Printf.sprintf "%s\n-- footprint: %s"
    (Plan.explain cres.Compile.plan)
    (Core.Static.Footprint.to_string
       (Core.Static.Footprint.of_prog compiled.Engine.prog))
