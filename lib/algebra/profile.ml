(* Per-operator execution profile (EXPLAIN ANALYZE).

   One [op] record per plan node, indexed by the node's pre-order id
   ({!Plan.size_v} / the numbering described in plan.ml), filled in
   by the executor when profiling is requested. Timing uses the
   monotonic {!Xqb_obs.Clock}; the recorded time is *inclusive*
   (operator plus everything beneath it), and [render] subtracts the
   children's inclusive times to report self time — valid because
   every child node executes exactly once per parent invocation in
   this executor. *)

type op = {
  mutable invocations : int;
  mutable tuples_in : int;  (* tuples consumed from input plan(s) *)
  mutable tuples_out : int;  (* tuples (or items, for vplan nodes) produced *)
  mutable build : int;  (* join build-side tuples indexed *)
  mutable probed : int;  (* join probe-side tuples probed *)
  mutable probes : int;  (* hash-table key lookups *)
  mutable matches : int;  (* join pairs produced *)
  mutable time_ns : int;  (* cumulative inclusive wall time *)
}

type t = { ops : op array }

let new_op () =
  {
    invocations = 0;
    tuples_in = 0;
    tuples_out = 0;
    build = 0;
    probed = 0;
    probes = 0;
    matches = 0;
    time_ns = 0;
  }

let create (plan : Plan.vplan) =
  { ops = Array.init (Plan.size_v plan) (fun _ -> new_op ()) }

let op t id = t.ops.(id)
let n_ops t = Array.length t.ops

(* -- rendering ------------------------------------------------------ *)

let ms ns = float_of_int ns /. 1e6

(* Self time per node: inclusive minus the children's inclusive. *)
let self_times t (plan : Plan.vplan) =
  let self = Array.map (fun o -> o.time_ns) t.ops in
  List.iter
    (fun (id, kids) ->
      List.iter (fun k -> self.(id) <- self.(id) - t.ops.(k).time_ns) kids)
    (Plan.child_ids plan);
  self

let annot_of t self id =
  let o = t.ops.(id) in
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "  [#%d" id);
  Buffer.add_string b (Printf.sprintf " in=%d out=%d" o.tuples_in o.tuples_out);
  if o.build > 0 || o.probed > 0 then
    Buffer.add_string b
      (Printf.sprintf " build=%d probed=%d probes=%d matches=%d" o.build
         o.probed o.probes o.matches);
  Buffer.add_string b
    (Printf.sprintf " self=%.3fms total=%.3fms]" (ms self.(id)) (ms o.time_ns));
  Buffer.contents b

(* The plan tree with per-operator counters spliced in after each
   operator header, plus a one-line footer of totals. *)
let render (plan : Plan.vplan) t =
  let self = self_times t plan in
  let tree = Plan.explain_annotated ~annot:(annot_of t self) plan in
  let total_tuples =
    Array.fold_left (fun acc o -> acc + o.tuples_out) 0 t.ops
  in
  let root_ms = ms t.ops.(0).time_ns in
  Printf.sprintf "%s\n-- %d operators, %.3f ms, %d tuples/items produced" tree
    (n_ops t) root_ms total_tuples

(* JSON array of per-operator counters (wire EXPLAIN). *)
let to_json (plan : Plan.vplan) t =
  let self = self_times t plan in
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"op\":%d,\"invocations\":%d,\"in\":%d,\"out\":%d,\"build\":%d,\"probed\":%d,\"probes\":%d,\"matches\":%d,\"self_ms\":%.6f,\"total_ms\":%.6f}"
           i o.invocations o.tuples_in o.tuples_out o.build o.probed o.probes
           o.matches (ms self.(i)) (ms o.time_ns)))
    t.ops;
  Buffer.add_char buf ']';
  Buffer.contents buf
