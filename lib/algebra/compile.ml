(* Compilation of core expressions into the tuple algebra, with the
   §4.2-4.3 rewrite guards:

   "the optimization rules must be guarded by appropriate
    preconditions ... cardinality ... and a form of query
    independence. ... We must check that the inner branch of a join
    does not have updates. If the inner branch of the join does have
    update operations, they would be applied once for each element of
    the outer loop."

   Concretely, with the [Static.purity] classification:
   - if anything in the FLWOR block is Effecting (contains a snap),
     the block compiles to [Direct] — evaluation order is pinned;
   - the *inner branch* of a join (the right input and both keys) must
     be Pure: a merely-Updating inner branch would change how many
     update requests are emitted (cardinality);
   - the return expressions may be Updating: inside the innermost
     snap they emit requests without touching the store, and the
     join/group-by plan evaluates them exactly once per match, the
     same cardinality as the nested loop. *)

module C = Core.Core_ast
module Static = Core.Static

type clause =
  | Cl_for of string * string option * C.expr
  | Cl_let of string * C.expr
  | Cl_where of C.expr

type trace = { mutable fired : string list; mutable rejected : (string * string) list }

let new_trace () = { fired = []; rejected = [] }

let fire tr name = tr.fired <- name :: tr.fired

let reject tr name why = tr.rejected <- (name, why) :: tr.rejected

(* Split a FLWOR-shaped core expression into its clause chain and
   return expression. [If (c, rest, Empty)] is a where clause. *)
let rec collect_clauses (e : C.expr) : clause list * C.expr =
  match e with
  | C.For (v, pos, e1, rest) ->
    let cls, ret = collect_clauses rest in
    (Cl_for (v, pos, e1) :: cls, ret)
  | C.Let (v, e1, rest) ->
    let cls, ret = collect_clauses rest in
    (Cl_let (v, e1) :: cls, ret)
  | C.If (c, rest, C.Empty) ->
    let cls, ret = collect_clauses rest in
    (Cl_where c :: cls, ret)
  | _ -> ([], e)

module SSet = Static.SSet

(* Try to split an equality predicate into (left key, right key) where
   the left key only mentions [bound] variables and the right key only
   mentions [rvar] (plus variables free in neither side's scope, i.e.
   globals). *)
let split_join_pred ~bound ~rvar (pred : C.expr) : (C.expr * C.expr) option =
  match pred with
  | C.Binop (Xqb_syntax.Ast.Gen_eq, x, y) ->
    let fx = Static.free_vars x and fy = Static.free_vars y in
    let mentions_r f = SSet.mem rvar f in
    let mentions_bound f = not (SSet.disjoint f bound) in
    if mentions_r fy && (not (mentions_bound fy)) && not (mentions_r fx) then
      Some (x, y)
    else if mentions_r fx && (not (mentions_bound fx)) && not (mentions_r fy)
    then Some (y, x)
    else None
  | _ -> None

(* The inner FLWOR pattern of §4.3:
     for $t in E2 where k_t = k_bound return R
   (in core: For (t, _, E2, If (eq, R, Empty))). *)
let match_inner_flwor ~bound (e : C.expr) :
    (string * C.expr * C.expr * C.expr * C.expr) option =
  match e with
  | C.For (t, None, e2, C.If (pred, r, C.Empty)) -> (
    match split_join_pred ~bound ~rvar:t pred with
    | Some (lkey, rkey) when SSet.disjoint (Static.free_vars e2) bound ->
      Some (t, e2, lkey, rkey, r)
    | _ -> None)
  | _ -> None

type ctx = {
  purity : C.expr -> Static.purity;
  trace : trace;
}

let pure cctx e = cctx.purity e = Static.Pure
let not_effecting cctx e = cctx.purity e <> Static.Effecting

(* Compile a clause chain left to right into a tuple plan. [bound] is
   the set of variables the current plan binds. *)
let rec compile_clauses cctx (plan : Plan.tplan) (bound : SSet.t)
    (clauses : clause list) : Plan.tplan =
  match clauses with
  (* -- Join detection: for $v2 in E2 ... where k_l = k_r ----------- *)
  | Cl_for (v2, None, e2) :: Cl_where pred :: rest
    when SSet.disjoint (Static.free_vars e2) bound
         && Option.is_some (split_join_pred ~bound ~rvar:v2 pred) -> (
    let lkey, rkey = Option.get (split_join_pred ~bound ~rvar:v2 pred) in
    if not (pure cctx e2) then begin
      reject cctx.trace "hash-join" "inner branch is not pure";
      compile_fallback cctx plan bound clauses
    end
    else if not (pure cctx lkey && pure cctx rkey) then begin
      reject cctx.trace "hash-join" "join keys are not pure";
      compile_fallback cctx plan bound clauses
    end
    else begin
      fire cctx.trace "hash-join";
      let right = Plan.For_tuple (Plan.Unit, v2, None, e2) in
      let plan = Plan.Join { left = plan; right; lkey; rkey } in
      compile_clauses cctx plan (SSet.add v2 bound) rest
    end)
  (* -- Outer-join/group-by unnesting (the §4.3 plan) ---------------- *)
  | Cl_let (a, inner) :: rest
    when Option.is_some (match_inner_flwor ~bound inner) -> (
    let t, e2, lkey, rkey, r = Option.get (match_inner_flwor ~bound inner) in
    if not (pure cctx e2) then begin
      reject cctx.trace "outer-join-groupby" "inner branch is not pure";
      compile_fallback cctx plan bound clauses
    end
    else if not (pure cctx lkey && pure cctx rkey) then begin
      reject cctx.trace "outer-join-groupby" "join keys are not pure";
      compile_fallback cctx plan bound clauses
    end
    else if not (not_effecting cctx r) then begin
      reject cctx.trace "outer-join-groupby" "inner return contains a snap";
      compile_fallback cctx plan bound clauses
    end
    else begin
      fire cctx.trace "outer-join-groupby";
      let right = Plan.For_tuple (Plan.Unit, t, None, e2) in
      let plan =
        Plan.Outer_join_group { left = plan; right; lkey; rkey; ret = r; out = a }
      in
      compile_clauses cctx plan (SSet.add a bound) rest
    end)
  | [] -> plan
  | _ -> compile_fallback cctx plan bound clauses

(* Pipeline compilation: order-preserving, so it needs no purity
   guard — tuples flow exactly in nested-loop order. *)
and compile_fallback cctx plan bound = function
  | [] -> plan
  | Cl_for (v, pos, e) :: rest ->
    let bound = SSet.add v bound in
    let bound = match pos with Some p -> SSet.add p bound | None -> bound in
    compile_clauses cctx (Plan.For_tuple (plan, v, pos, e)) bound rest
  | Cl_let (v, e) :: rest ->
    compile_clauses cctx (Plan.Let_tuple (plan, v, e)) (SSet.add v bound) rest
  | Cl_where e :: rest -> compile_clauses cctx (Plan.Select (plan, e)) bound rest

(* Compile one expression. FLWOR blocks become tuple plans; sequences
   recurse; snaps recurse (a snap boundary also restores the pure
   optimization context inside, §4.2); everything else is Direct. *)
let rec compile_expr cctx (e : C.expr) : Plan.vplan =
  match e with
  | C.Snap (m, body) -> Plan.Snap_v (m, compile_expr cctx body)
  | C.Seq (a, b) -> Plan.Seq_v (compile_expr cctx a, compile_expr cctx b)
  (* order-by FLWORs: compile the clause chain (join detection
     included), then a stable OrderBy over the tuple stream. *)
  | C.Sort_flwor (clauses, specs, ret) ->
    if cctx.purity e = Static.Effecting then begin
      reject cctx.trace "flwor-to-algebra" "block contains a snap";
      Plan.Direct e
    end
    else begin
      let cls =
        List.map
          (function
            | C.S_for (v, pos, e) -> Cl_for (v, pos, e)
            | C.S_let (v, e) -> Cl_let (v, e)
            | C.S_where e -> Cl_where e)
          clauses
      in
      let tplan = compile_clauses cctx Plan.Unit SSet.empty cls in
      Plan.Map_from_tuple (Plan.Sort (tplan, specs), ret)
    end
  | C.For _ | C.Let _ -> (
    if cctx.purity e = Static.Effecting then begin
      reject cctx.trace "flwor-to-algebra" "block contains a snap";
      Plan.Direct e
    end
    else
      let clauses, ret = collect_clauses e in
      match clauses with
      | [] -> Plan.Direct e
      | _ ->
        let tplan = compile_clauses cctx Plan.Unit SSet.empty clauses in
        Plan.Map_from_tuple (tplan, ret))
  (* distinct-doc-order as its own operator, so EXPLAIN shows the
     sort (or its static elision) and the body still compiles to
     algebra. The elided flag was decided by [Static.elide_ddo]
     during [Engine.compile]. *)
  | C.Call_builtin (("%ddo" | "%ddo-elided") as nm, [ inner ]) ->
    Plan.Ddo_v
      { elided = String.equal nm "%ddo-elided";
        body = compile_expr cctx inner }
  | _ -> Plan.Direct e

type result = {
  plan : Plan.vplan;
  fired : string list;
  rejected : (string * string) list;
}

(* Entry point: compile [e] given a purity oracle (built from the
   program's function classification, [Static.purity_in_prog]). *)
let compile ~purity (e : C.expr) : result =
  let cctx = { purity; trace = new_trace () } in
  let plan = compile_expr cctx e in
  { plan; fired = List.rev cctx.trace.fired; rejected = List.rev cctx.trace.rejected }
