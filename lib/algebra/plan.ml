(* The tuple algebra of §4 — a simplified version of the Galax
   nested-relational algebra ([20, 21] in the paper). Tuple plans
   ([tplan]) produce streams of variable-binding tuples; value plans
   ([vplan]) produce XDM values.

   The shape mirrors the paper's optimized plan for the XMark Q8
   variant:

     Snap {
       MapFromItem { <person ...>{count(Input#a)}</person> }
       (GroupBy [Input#p, {...}]
         (LeftOuterJoin (MapFromItem{[p:Input]}(...),
                         MapFromItem{[t:Input]}(...))
           on {...}))
     }

   [Outer_join_group] fuses the LeftOuterJoin + GroupBy pair — the
   grouping key is the (preserved) left tuple, which is how Galax's
   unnesting uses it, so fusing loses no generality for this pattern
   and keeps the executor O(|L| + |R| + |matches|). *)

module C = Core.Core_ast

type tplan =
  | Unit  (* a single empty tuple *)
  | For_tuple of tplan * string * string option * C.expr
    (* MapConcat: for each input tuple, bind var (and position var)
       from the expression's items *)
  | Let_tuple of tplan * string * C.expr
  | Select of tplan * C.expr  (* keep tuples where the EBV holds *)
  | Join of {
      left : tplan;
      right : tplan;
      lkey : C.expr;  (* evaluated in left-tuple scope *)
      rkey : C.expr;  (* evaluated in right-tuple scope *)
    }
    (* typed hash join on general-= of the keys *)
  | Outer_join_group of {
      left : tplan;
      right : tplan;
      lkey : C.expr;
      rkey : C.expr;
      ret : C.expr;  (* evaluated per matching right tuple (+ left scope) *)
      out : string;  (* variable receiving the grouped sequence *)
    }
  | Sort of tplan * (C.expr * Xqb_syntax.Ast.sort_dir) list
    (* stable sort of the tuple stream by per-tuple keys (order by) *)

type vplan =
  | Direct of C.expr  (* fallback: direct interpretation *)
  | Map_from_tuple of tplan * C.expr  (* MapFromItem *)
  | Seq_v of vplan * vplan
  | Snap_v of C.snap_mode * vplan
  | Ddo_v of { elided : bool; body : vplan }
    (* distinct-document-order over the body's value; [elided] =
       statically certified already sorted/duplicate-free (the
       identity at runtime, counted by the executor) *)

(* -- Node numbering --------------------------------------------------

   Plans are identified per-node by their *pre-order index*: the root
   is 0 and a node at index i has its first child at i+1, the next at
   i+1+size(first child), and so on. A [Map_from_tuple]'s embedded
   tuple plan continues the same numbering. The executor's profiler
   and the annotated renderer both derive the numbering structurally,
   so the ids agree without storing them in the tree. *)

let rec size_t = function
  | Unit -> 1
  | For_tuple (p, _, _, _) | Let_tuple (p, _, _) | Select (p, _) | Sort (p, _) ->
    1 + size_t p
  | Join { left; right; _ } | Outer_join_group { left; right; _ } ->
    1 + size_t left + size_t right

let rec size_v = function
  | Direct _ -> 1
  | Map_from_tuple (t, _) -> 1 + size_t t
  | Seq_v (a, b) -> 1 + size_v a + size_v b
  | Snap_v (_, p) -> 1 + size_v p
  | Ddo_v { body; _ } -> 1 + size_v body

(* Child pre-order ids of each node, as an alist over the whole tree
   (the profiler uses this to compute self times). *)
let child_ids (p : vplan) : (int * int list) list =
  let acc = ref [] in
  let rec go_t id p =
    (match p with
    | Unit -> acc := (id, []) :: !acc
    | For_tuple (i, _, _, _) | Let_tuple (i, _, _) | Select (i, _) | Sort (i, _)
      ->
      acc := (id, [ id + 1 ]) :: !acc;
      go_t (id + 1) i
    | Join { left; right; _ } | Outer_join_group { left; right; _ } ->
      let rid = id + 1 + size_t left in
      acc := (id, [ id + 1; rid ]) :: !acc;
      go_t (id + 1) left;
      go_t rid right);
    ()
  in
  let rec go_v id p =
    match p with
    | Direct _ -> acc := (id, []) :: !acc
    | Map_from_tuple (t, _) ->
      acc := (id, [ id + 1 ]) :: !acc;
      go_t (id + 1) t
    | Seq_v (a, b) ->
      let bid = id + 1 + size_v a in
      acc := (id, [ id + 1; bid ]) :: !acc;
      go_v (id + 1) a;
      go_v bid b
    | Snap_v (_, q) ->
      acc := (id, [ id + 1 ]) :: !acc;
      go_v (id + 1) q
    | Ddo_v { body; _ } ->
      acc := (id, [ id + 1 ]) :: !acc;
      go_v (id + 1) body
  in
  go_v 0 p;
  List.rev !acc

(* -- Explain --------------------------------------------------------

   The renderers take an [annot] callback from pre-order node id to a
   suffix string; the plain [explain] passes the empty annotation,
   EXPLAIN ANALYZE passes per-operator counters. *)

let rec pp_tplan_a annot id ppf (p : tplan) =
  let open Format in
  match p with
  | Unit -> fprintf ppf "Unit%s" (annot id)
  | For_tuple (input, v, _, e) ->
    fprintf ppf "@[<v 2>MapConcat [%s := %s]%s@,(%a)@]" v
      (abbrev (C.to_string e))
      (annot id)
      (pp_tplan_a annot (id + 1))
      input
  | Let_tuple (input, v, e) ->
    fprintf ppf "@[<v 2>MapLet [%s := %s]%s@,(%a)@]" v (abbrev (C.to_string e))
      (annot id)
      (pp_tplan_a annot (id + 1))
      input
  | Select (input, e) ->
    fprintf ppf "@[<v 2>Select {%s}%s@,(%a)@]" (abbrev (C.to_string e)) (annot id)
      (pp_tplan_a annot (id + 1))
      input
  | Join { left; right; lkey; rkey } ->
    fprintf ppf "@[<v 2>HashJoin on {%s = %s}%s@,(%a,@, %a)@]"
      (abbrev (C.to_string lkey))
      (abbrev (C.to_string rkey))
      (annot id)
      (pp_tplan_a annot (id + 1))
      left
      (pp_tplan_a annot (id + 1 + size_t left))
      right
  | Outer_join_group { left; right; lkey; rkey; ret; out } ->
    fprintf ppf
      "@[<v 2>GroupBy [%s := {%s}]%s@,(@[<v 2>LeftOuterJoin on {%s = %s}@,(%a,@, %a)@])@]"
      out
      (abbrev (C.to_string ret))
      (annot id)
      (abbrev (C.to_string lkey))
      (abbrev (C.to_string rkey))
      (pp_tplan_a annot (id + 1))
      left
      (pp_tplan_a annot (id + 1 + size_t left))
      right
  | Sort (input, specs) ->
    fprintf ppf "@[<v 2>OrderBy [%s]%s@,(%a)@]"
      (String.concat ", "
         (List.map
            (fun (k, d) ->
              abbrev (C.to_string k)
              ^ match d with Xqb_syntax.Ast.Ascending -> "" | Descending -> " desc")
            specs))
      (annot id)
      (pp_tplan_a annot (id + 1))
      input

and pp_vplan_a annot id ppf (p : vplan) =
  let open Format in
  match p with
  | Direct e -> fprintf ppf "Eval {%s}%s" (abbrev (C.to_string e)) (annot id)
  | Map_from_tuple (t, e) ->
    fprintf ppf "@[<v 2>MapFromItem {%s}%s@,(%a)@]" (abbrev (C.to_string e))
      (annot id)
      (pp_tplan_a annot (id + 1))
      t
  | Seq_v (a, b) ->
    fprintf ppf "@[<v 2>Sequence%s@,(%a,@, %a)@]" (annot id)
      (pp_vplan_a annot (id + 1))
      a
      (pp_vplan_a annot (id + 1 + size_v a))
      b
  | Snap_v (m, q) ->
    let ms = Xqb_syntax.Ast.snap_mode_to_string m in
    fprintf ppf "@[<v 2>Snap %s{%s@,%a@,}@]"
      (if ms = "" then "" else ms ^ " ")
      (annot id)
      (pp_vplan_a annot (id + 1))
      q
  | Ddo_v { elided; body } ->
    fprintf ppf "@[<v 2>DDO%s%s@,(%a)@]"
      (if elided then " (elided)" else "")
      (annot id)
      (pp_vplan_a annot (id + 1))
      body

and abbrev s = if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

let no_annot _ = ""
let pp_tplan ppf p = pp_tplan_a no_annot 0 ppf p
let pp_vplan ppf p = pp_vplan_a no_annot 0 ppf p

let explain (p : vplan) = Format.asprintf "%a" pp_vplan p

(* The same tree with a per-node annotation (EXPLAIN ANALYZE). *)
let explain_annotated ~annot (p : vplan) =
  Format.asprintf "%a" (pp_vplan_a annot 0) p

(* Is any part of the plan more than a Direct fallback? (E7 counts
   this as "rewrites fired".) *)
let rec uses_algebra = function
  | Direct _ -> false
  | Map_from_tuple _ -> true
  | Seq_v (a, b) -> uses_algebra a || uses_algebra b
  | Snap_v (_, p) -> uses_algebra p
  | Ddo_v { body; _ } -> uses_algebra body

let rec has_join_t = function
  | Unit -> false
  | For_tuple (p, _, _, _) | Let_tuple (p, _, _) | Select (p, _) | Sort (p, _) ->
    has_join_t p
  | Join _ | Outer_join_group _ -> true

let rec has_join = function
  | Direct _ -> false
  | Map_from_tuple (t, _) -> has_join_t t
  | Seq_v (a, b) -> has_join a || has_join b
  | Snap_v (_, p) -> has_join p
  | Ddo_v { body; _ } -> has_join body
