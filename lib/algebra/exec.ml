(* Executor for the tuple algebra. Tuples are variable environments
   extending the engine's globals; expression leaves are evaluated by
   the core evaluator, so plan execution and direct evaluation share
   one semantics (the equivalence tests in test/test_optimizer.ml rely
   on this split).

   Two levels of instrumentation, both optional:
   - [stats]: three global counters (tuples/probes/matches), always
     cheap, used by the benches;
   - [prof]: a {!Profile.t} with per-operator counters and inclusive
     wall times, addressed by the plan's pre-order node ids (see
     plan.ml) — the EXPLAIN ANALYZE machinery. When [prof] is [None]
     each node pays one option match and nothing else. *)

module C = Core.Core_ast
module Context = Core.Context
module Eval = Core.Eval
module Atomic = Xqb_xdm.Atomic
module Item = Xqb_xdm.Item
module Value = Xqb_xdm.Value

type stats = {
  mutable tuples : int;  (* tuples materialized *)
  mutable probes : int;  (* hash probes *)
  mutable matches : int;  (* join pairs produced *)
}

let new_stats () = { tuples = 0; probes = 0; matches = 0 }

(* Hash keys for the typed hash join, encoding XQuery's general-=
   coercion rules:
   - a numeric operand compares numerically with numerics and with
     untyped (untyped is cast to double);
   - an untyped operand compares as a string with strings and other
     untyped values;
   - a string operand compares as a string with strings and untyped.
   Build-side entries and probe-side lookups are chosen so a hash hit
   occurs exactly when general-= would hold. *)
type key =
  | K_num of float  (* numeric values *)
  | K_unt_num of float  (* untyped values, under their numeric reading *)
  | K_str of string  (* strings and untyped values, string reading *)
  | K_bool of bool

let build_keys (a : Atomic.t) : key list =
  match a with
  | Atomic.Integer i -> [ K_num (float_of_int i) ]
  | Atomic.Decimal f | Atomic.Double f ->
    if Float.is_nan f then [] else [ K_num f ]
  | Atomic.String s -> [ K_str s ]
  | Atomic.Untyped s -> (
    K_str s
    ::
    (match float_of_string_opt (String.trim s) with
    | Some f when not (Float.is_nan f) -> [ K_unt_num f ]
    | _ -> []))
  | Atomic.Boolean b -> [ K_bool b ]
  | Atomic.QName q -> [ K_str ("Q{" ^ Xqb_xml.Qname.to_string q) ]

let probe_keys (a : Atomic.t) : key list =
  match a with
  | Atomic.Integer i ->
    let f = float_of_int i in
    [ K_num f; K_unt_num f ]
  | Atomic.Decimal f | Atomic.Double f ->
    if Float.is_nan f then [] else [ K_num f; K_unt_num f ]
  | Atomic.String s -> [ K_str s ]
  | Atomic.Untyped s -> (
    K_str s
    ::
    (match float_of_string_opt (String.trim s) with
    | Some f when not (Float.is_nan f) -> [ K_num f ]
    | _ -> []))
  | Atomic.Boolean b -> [ K_bool b ]
  | Atomic.QName q -> [ K_str ("Q{" ^ Xqb_xml.Qname.to_string q) ]

let eval_keys ctx env (e : C.expr) = Value.atomize ctx.Context.store (Eval.eval ctx env None e)

(* Build an index from right tuples. Returns the tuple array and the
   key table mapping to tuple indexes. *)
let build_index ctx (rkey : C.expr) (right : Context.env list) =
  let arr = Array.of_list right in
  let tbl : (key, int list ref) Hashtbl.t = Hashtbl.create (2 * Array.length arr) in
  Array.iteri
    (fun i env ->
      List.iter
        (fun a ->
          List.iter
            (fun k ->
              match Hashtbl.find_opt tbl k with
              | Some l -> l := i :: !l
              | None -> Hashtbl.add tbl k (ref [ i ]))
            (build_keys a))
        (eval_keys ctx env rkey))
    arr;
  (arr, tbl)

(* Indexes of right tuples matching the left tuple's key value, in
   right order, without duplicates. [op] (when profiling) counts the
   same hash lookups as [stats.probes], per operator. *)
let matching_indexes ctx stats op tbl env (lkey : C.expr) =
  let hits = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun k ->
          stats.probes <- stats.probes + 1;
          (match op with
          | Some (o : Profile.op) -> o.Profile.probes <- o.Profile.probes + 1
          | None -> ());
          match Hashtbl.find_opt tbl k with
          | Some l -> hits := List.rev_append !l !hits
          | None -> ())
        (probe_keys a))
    (eval_keys ctx env lkey);
  List.sort_uniq compare !hits

(* Merge the variables a sub-plan bound into the outer tuple. Both are
   full environments; [right] wins on its own variables. *)
let merge_envs (left : Context.env) (right : Context.env) : Context.env =
  Context.SMap.union (fun _ _ r -> Some r) left right

(* Profiling shims: [pop] fetches the node's counter record, [timed]
   accumulates inclusive wall time around the node's execution. *)
let pop prof id =
  match prof with None -> None | Some p -> Some (Profile.op p id)

let timed op f =
  match op with
  | None -> f ()
  | Some (o : Profile.op) ->
    o.Profile.invocations <- o.Profile.invocations + 1;
    let t0 = Xqb_obs.Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        o.Profile.time_ns <- o.Profile.time_ns + (Xqb_obs.Clock.now_ns () - t0))
      f

(* Continuous-profiler operator labels: while the sampling profiler
   runs, samples taken inside this node carry an ["op<id>"] frame
   under the phase label. One atomic read when the profiler is off —
   cheap enough for the per-tuple path. *)
let sampled id f =
  if Xqb_obs.Profile.running () then Xqb_obs.Profile.with_op id f else f ()

let note_io op tin tout =
  match op with
  | None -> ()
  | Some (o : Profile.op) ->
    o.Profile.tuples_in <- o.Profile.tuples_in + tin;
    o.Profile.tuples_out <- o.Profile.tuples_out + tout

let rec exec_t ctx stats prof id (env0 : Context.env) (p : Plan.tplan) :
    Context.env list =
  let op = pop prof id in
  sampled id @@ fun () ->
  timed op @@ fun () ->
  match p with
  | Plan.Unit ->
    stats.tuples <- stats.tuples + 1;
    note_io op 0 1;
    [ env0 ]
  | Plan.For_tuple (input, v, pos, e) ->
    let tuples = exec_t ctx stats prof (id + 1) env0 input in
    let out = ref [] in
    let n_out = ref 0 in
    List.iter
      (fun env ->
        let items = Eval.eval ctx env None e in
        List.iteri
          (fun i item ->
            stats.tuples <- stats.tuples + 1;
            incr n_out;
            let env = Context.bind env v [ item ] in
            let env =
              match pos with
              | None -> env
              | Some pv -> Context.bind env pv (Value.of_int (i + 1))
            in
            out := env :: !out)
          items)
      tuples;
    note_io op (List.length tuples) !n_out;
    List.rev !out
  | Plan.Let_tuple (input, v, e) ->
    let tuples = exec_t ctx stats prof (id + 1) env0 input in
    let n = List.length tuples in
    note_io op n n;
    List.map (fun env -> Context.bind env v (Eval.eval ctx env None e)) tuples
  | Plan.Select (input, e) ->
    let tuples = exec_t ctx stats prof (id + 1) env0 input in
    let kept =
      List.filter
        (fun env -> Value.effective_boolean_value (Eval.eval ctx env None e))
        tuples
    in
    note_io op (List.length tuples) (List.length kept);
    kept
  | Plan.Join { left; right; lkey; rkey } ->
    let ltuples = exec_t ctx stats prof (id + 1) env0 left in
    let rtuples = exec_t ctx stats prof (id + 1 + Plan.size_t left) env0 right in
    let arr, tbl = build_index ctx rkey rtuples in
    (match op with
    | Some o ->
      o.Profile.build <- o.Profile.build + Array.length arr;
      o.Profile.probed <- o.Profile.probed + List.length ltuples
    | None -> ());
    let out = ref [] in
    let n_out = ref 0 in
    List.iter
      (fun lenv ->
        List.iter
          (fun i ->
            stats.matches <- stats.matches + 1;
            (match op with
            | Some o -> o.Profile.matches <- o.Profile.matches + 1
            | None -> ());
            incr n_out;
            out := merge_envs lenv arr.(i) :: !out)
          (matching_indexes ctx stats op tbl lenv lkey))
      ltuples;
    note_io op (List.length ltuples + List.length rtuples) !n_out;
    List.rev !out
  | Plan.Sort (input, specs) ->
    let tuples = exec_t ctx stats prof (id + 1) env0 input in
    let n = List.length tuples in
    note_io op n n;
    let keyed =
      List.map
        (fun env ->
          ( List.map (fun (k, d) -> (Eval.eval_sort_key ctx env None k, d)) specs,
            env ))
        tuples
    in
    List.map snd
      (List.stable_sort (fun (k1, _) (k2, _) -> Eval.compare_sort_keys k1 k2) keyed)
  | Plan.Outer_join_group { left; right; lkey; rkey; ret; out } ->
    let ltuples = exec_t ctx stats prof (id + 1) env0 left in
    let rtuples = exec_t ctx stats prof (id + 1 + Plan.size_t left) env0 right in
    let arr, tbl = build_index ctx rkey rtuples in
    (match op with
    | Some o ->
      o.Profile.build <- o.Profile.build + Array.length arr;
      o.Profile.probed <- o.Profile.probed + List.length ltuples
    | None -> ());
    let result =
      List.map
        (fun lenv ->
          let group = ref [] in
          List.iter
            (fun i ->
              stats.matches <- stats.matches + 1;
              (match op with
              | Some o -> o.Profile.matches <- o.Profile.matches + 1
              | None -> ());
              let env = merge_envs lenv arr.(i) in
              group := List.rev_append (Eval.eval ctx env None ret) !group)
            (matching_indexes ctx stats op tbl lenv lkey);
          Context.bind lenv out (List.rev !group))
        ltuples
    in
    note_io op (List.length ltuples + List.length rtuples) (List.length ltuples);
    result

let rec exec_v ctx stats prof id (env0 : Context.env) (p : Plan.vplan) : Value.t
    =
  let op = pop prof id in
  sampled id @@ fun () ->
  timed op @@ fun () ->
  match p with
  | Plan.Direct e ->
    let v = Eval.eval ctx env0 None e in
    note_io op 0 (List.length v);
    v
  | Plan.Map_from_tuple (tplan, ret) ->
    let tuples = exec_t ctx stats prof (id + 1) env0 tplan in
    let out = ref [] in
    List.iter
      (fun env -> out := List.rev_append (Eval.eval ctx env None ret) !out)
      tuples;
    let v = List.rev !out in
    note_io op (List.length tuples) (List.length v);
    v
  | Plan.Seq_v (a, b) ->
    let va = exec_v ctx stats prof (id + 1) env0 a in
    let vb = exec_v ctx stats prof (id + 1 + Plan.size_v a) env0 b in
    let v = va @ vb in
    note_io op (List.length va + List.length vb) (List.length v);
    v
  | Plan.Snap_v (mode, body) ->
    let snaps = ctx.Context.snaps in
    Core.Snap_stack.push snaps (Core.Apply.mode_of_snap mode);
    let v =
      match exec_v ctx stats prof (id + 1) env0 body with
      | v -> v
      | exception ex ->
        ignore (Core.Snap_stack.pop snaps);
        raise ex
    in
    let delta, mode = Core.Snap_stack.pop snaps in
    (match ctx.Context.on_apply with
    | Some hook -> hook delta mode
    | None -> ());
    (match ctx.Context.tracer with
    | None ->
      Core.Apply.apply ~rand_state:ctx.Context.rand ctx.Context.store mode delta
    | Some tr ->
      Xqb_obs.Trace.with_span ~cat:"snap"
        ~args:
          [
            ("requests", string_of_int (List.length delta));
            ("mode", Core.Apply.mode_to_string mode);
          ]
        tr "snap.apply"
        (fun () ->
          Core.Apply.apply ~rand_state:ctx.Context.rand ~tracer:tr
            ctx.Context.store mode delta));
    note_io op 0 (List.length v);
    v
  | Plan.Ddo_v { elided; body } ->
    let vb = exec_v ctx stats prof (id + 1) env0 body in
    let v =
      if elided then begin
        (* statically certified sorted/duplicate-free: identity *)
        ctx.Context.ddo_elided <- ctx.Context.ddo_elided + 1;
        vb
      end
      else Core.Functions.call ctx None "%ddo" [ vb ]
    in
    note_io op (List.length vb) (List.length v);
    v

let exec ?(stats = new_stats ()) ?prof ctx env0 plan =
  exec_v ctx stats prof 0 env0 plan
