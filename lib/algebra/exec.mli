(** Executor for the tuple algebra. Tuples are variable environments
    extending the engine's globals; expression leaves are evaluated by
    the core evaluator, so plan execution and direct evaluation share
    one semantics.

    Instrumentation is optional at two granularities: [stats] (three
    global counters, cheap, for the benches) and [prof] (per-operator
    counters and inclusive times — EXPLAIN ANALYZE). With [prof]
    absent each node costs one option match. *)

type stats = {
  mutable tuples : int;  (** tuples materialized *)
  mutable probes : int;  (** hash-table probes *)
  mutable matches : int;  (** join pairs produced *)
}

val new_stats : unit -> stats

(** Execute a value plan from an initial environment. [prof] must be
    sized to [plan] ({!Profile.create}). Snap application inside the
    plan records "snap.apply" spans when the context carries a
    tracer. *)
val exec :
  ?stats:stats ->
  ?prof:Profile.t ->
  Core.Context.t ->
  Core.Context.env ->
  Plan.vplan ->
  Xqb_xdm.Value.t
