(** Per-operator execution profile (EXPLAIN ANALYZE).

    One counter record per plan node, indexed by pre-order node id;
    the executor fills it in when {!Exec.exec} is passed [?prof].
    Recorded times are inclusive; {!render} derives self times by
    subtracting children (each child executes exactly once per parent
    invocation in this executor). *)

type op = {
  mutable invocations : int;
  mutable tuples_in : int;  (** tuples consumed from input plan(s) *)
  mutable tuples_out : int;  (** tuples (items, for vplan nodes) produced *)
  mutable build : int;  (** join build-side tuples indexed *)
  mutable probed : int;  (** join probe-side tuples probed *)
  mutable probes : int;  (** hash-table key lookups *)
  mutable matches : int;  (** join pairs produced *)
  mutable time_ns : int;  (** cumulative inclusive wall time *)
}

type t

(** Fresh profile sized to the plan ({!Plan.size_v} operators). *)
val create : Plan.vplan -> t

val op : t -> int -> op
val n_ops : t -> int

(** The plan tree annotated with per-operator counters and self/total
    times, plus a totals footer. *)
val render : Plan.vplan -> t -> string

(** JSON array of per-operator counters. *)
val to_json : Plan.vplan -> t -> string
